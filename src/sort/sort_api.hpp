// Unified driver for every {algorithm x programming model} combination in
// the paper: sets up the model-appropriate storage (shared arrays for
// CC-SAS, private partitions for MPI, a symmetric heap for SHMEM),
// generates the requested key distribution, runs the collective sort on a
// SimTeam, verifies the result, and returns virtual-time breakdowns.
//
// This is the library's main public entry point; examples and the bench
// harnesses drive everything through SortSpec. Two call shapes:
//
//   * try_run_sort(spec) -> Result<SortResult> — the v2 non-throwing
//     surface: every failure is a typed Status (invalid argument,
//     cancellation, injected fault, ...) the caller can branch on.
//   * run_sort(spec) -> SortResult — thin throwing wrapper (StatusError).
#pragma once

#include <atomic>
#include <functional>
#include <optional>
#include <vector>

#include <string>
#include <utility>

#include "common/cli.hpp"
#include "common/status.hpp"
#include "common/team.hpp"
#include "keys/distributions.hpp"
#include "keys/record.hpp"
#include "machine/params.hpp"
#include "msg/transport.hpp"
#include "sim/clock.hpp"
#include "sort/kernels.hpp"
#include "sort/verify.hpp"

namespace dsm::sort {

enum class Algo {
  kRadix,      // LSD radix sort (the paper's §3.1)
  kSample,     // single-level sample sort (§3.2), LSD local sorts
  kMsdRadix,   // sample skeleton, MSD in-place local sorts (msd_radix.hpp)
  kMergesort,  // sample skeleton, k-way mergesort local sorts (merge_sort.hpp)
};
enum class Model { kCcSas, kCcSasNew, kMpi, kShmem };

/// Canonical registry tables (see common/cli.hpp). The names are wire
/// format: journals and replay files carry them. The planner's cell
/// matrix and the predictor's ranked menu are derived from these tables,
/// so adding an algorithm here grows both automatically.
inline constexpr EnumEntry<Algo> kAlgoNames[] = {
    {Algo::kRadix, "radix"},
    {Algo::kSample, "sample"},
    {Algo::kMsdRadix, "msd"},
    {Algo::kMergesort, "merge"},
};
inline constexpr EnumEntry<Model> kModelNames[] = {
    {Model::kCcSas, "CC-SAS"},
    {Model::kCcSasNew, "CC-SAS-NEW"},
    {Model::kMpi, "MPI"},
    {Model::kShmem, "SHMEM"},
};

const char* algo_name(Algo a);
const char* model_name(Model m);
Algo algo_from_name(const std::string& name);
Model model_from_name(const std::string& name);
/// Typed parses for the v2 surface: kInvalidArgument listing the accepted
/// names on failure.
Result<Algo> try_algo_from_name(const std::string& name);
Result<Model> try_model_from_name(const std::string& name);

/// The feasibility rule shared by spec validation, the predictor's
/// ranked menu, and the planner's cell filter: CC-SAS-NEW is the paper's
/// radix-sort restructuring (it reorganises the radix permutation's
/// remote traffic) and exists for no other algorithm.
constexpr bool algo_supports_model(Algo a, Model m) {
  return m != Model::kCcSasNew || a == Algo::kRadix;
}

/// True for the algorithms whose menu entry has a meaningful radix_bits
/// knob (LSD local sorts / run generation). MSD radix recurses on fixed
/// byte digits, so its planner cells carry radix_bits = 8 verbatim.
constexpr bool algo_uses_radix_bits(Algo a) { return a != Algo::kMsdRadix; }

/// Cooperative cancellation flag. The owner arms it from any thread; the
/// sort polls it at every checkpoint and phase mark and unwinds with
/// StatusCode::kCancelled. Cancellation is cooperative: the sort stops at
/// the next checkpoint, never mid-kernel.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Run-time observation and control points threaded through run_sort.
struct SortHooks {
  /// Called at named checkpoints of the run: "keygen" before input
  /// generation, every algorithm phase mark (the paper's phase vocabulary:
  /// "local histogram", "permutation", "local sort", ...) as rank 0
  /// reaches it with that rank's virtual time so far, and "verify" before
  /// result verification. Throwing aborts the sort cleanly (the team
  /// poison machinery unwinds every rank) — this is the fault-injection
  /// and deadline-enforcement hook.
  std::function<void(const char* site, double virtual_ns)> on_site;

  /// Polled at the same checkpoints; when cancelled, the sort unwinds
  /// with StatusCode::kCancelled. Borrowed, not owned.
  const CancelToken* cancel = nullptr;
};

struct SortSpec {
  Algo algo = Algo::kRadix;
  Model model = Model::kShmem;  // kCcSasNew is radix-only
  int nprocs = 1;
  Index n = Index{1} << 20;
  int radix_bits = 8;
  keys::Dist dist = keys::Dist::kGauss;
  std::uint64_t seed = 1;

  /// Record type being sorted (DESIGN.md §11). kU32 is the paper's
  /// workload: bare 4-byte keys. kKeyPayload32 attaches a 32-bit payload
  /// (the key's global input index) that travels with its key through
  /// every permutation — sorted output is stable, and the payload lane
  /// lets tests prove it. Charged virtual time is a pure function of the
  /// key stream, so kv32 runs report bit-identical elapsed_ns to u32.
  /// Default honours DSMSORT_RECORD.
  keys::RecordType record = keys::default_record_type();

  /// Machine configuration. Default: Origin 2000 with the page size the
  /// paper used for this data-set size.
  std::optional<machine::MachineParams> machine;

  /// Host execution engine for the simulated ranks. Virtual times are
  /// bit-identical across engines; this only changes how fast the host
  /// runs the simulation. Default: default_spmd_engine() (cooperative
  /// fibers unless overridden by DSMSORT_ENGINE).
  std::optional<SpmdEngine> engine;

  /// Host kernel backend for the radix histogram/permute loops. Like
  /// `engine`, this is charge-invariant: virtual times, figure tables and
  /// service replay output are bit-identical across backends (DESIGN.md
  /// §9). Default: optimized, or DSMSORT_KERNELS / --kernels override.
  KernelBackend kernel_backend = default_kernel_backend();

  /// Host threads per simulated rank for the kernel loops (histogram and
  /// permute). 0 = inherit default_kernel_jobs() (DSMSORT_KERNEL_JOBS or
  /// 1). Like `kernel_backend` this is charge-invariant: sorted output,
  /// virtual times and replay JSON are byte-identical for every value.
  int kernel_jobs = 0;

  /// Model-specific ablation knobs, grouped: every member has the paper's
  /// default, so ablation studies override exactly the knob they vary.
  struct Ablations {
    msg::Impl mpi_impl = msg::Impl::kDirect;  // NEW vs SGI transport
    bool mpi_chunk_messages = true;           // per-chunk vs per-destination
    bool shmem_use_put = false;               // get (paper) vs put
    int sample_count = 128;                   // samples per process
    int sample_group_size = 32;  // CC-SAS splitter groups (paper: 32)
    /// Radix only (§3.1): detect the global maximum key collectively and
    /// run only the passes its bit width needs.
    bool detect_max_key = false;
  };
  Ablations ablations;

  /// Fault-injection / deadline / cancellation hooks (see SortHooks).
  SortHooks hooks;

  /// When nonempty, write a JSON-lines event trace of the run (barriers
  /// and communication epochs per simulated processor) to this path.
  std::string trace_json_path;

  bool verify = true;

  /// When set, SortResult.output holds the fully sorted key sequence
  /// (concatenation of all runs) — for exact-equality testing; costs one
  /// extra copy of the data.
  bool keep_output = false;

  /// The machine this spec resolves to.
  machine::MachineParams resolved_machine() const;

  /// Every violated constraint, joined into one kInvalidArgument status
  /// (OK when the spec is valid) — one round trip fixes all mistakes.
  Status validate_status() const;
  /// Throwing wrapper: raises StatusError(validate_status()).
  void validate() const;
};

struct SortResult {
  double elapsed_ns = 0;                  // max over processes
  std::vector<sim::Breakdown> per_proc;   // one per simulated process
  std::vector<Index> run_sizes;           // output keys per process
  std::vector<Key> output;                // filled iff spec.keep_output
  /// Payload lane of the sorted records, aligned with `output`: filled
  /// iff spec.keep_output and the record type carries a payload.
  std::vector<keys::Payload> payload_output;
  keys::RecordType record = keys::RecordType::kU32;  // echo of spec.record
  /// Mean per-phase time attribution across processes (the paper's phase
  /// vocabulary: local/global histogram, permutation, redistribution,
  /// local sorts, splitters, barriers).
  std::vector<std::pair<std::string, sim::Breakdown>> phases;
  int passes = 0;                         // radix passes used (per local sort)
  bool verified = false;
  Index n = 0;

  /// End-to-end integrity fingerprints (DESIGN.md §12): the multiset
  /// checksum of the keys this sort actually consumed, and the
  /// order-dependent hash of the runs it produced. A cluster worker
  /// reports both so the master can verify the result against the
  /// admission-time expectation before acking.
  Checksum input_checksum;
  std::uint64_t run_hash = 0;

  double elapsed_us() const { return elapsed_ns / 1e3; }

  /// Load imbalance of the output distribution: max run / mean run
  /// (1.0 = perfectly balanced; meaningful for sample sort).
  double imbalance() const;
};

/// Run one parallel sort to completion (functionally real, virtual time).
/// Never throws for sort-level failures: invalid specs, cancellation,
/// hook-injected faults, and internal errors all return a typed Status.
Result<SortResult> try_run_sort(const SortSpec& spec);

/// Throwing wrapper around try_run_sort (raises StatusError).
SortResult run_sort(const SortSpec& spec);

/// Sequential baseline (Table 1): the instrumented radix sort on a
/// one-process team — the denominator of every speedup in the paper.
double seq_baseline_ns(Index n, keys::Dist dist, int radix_bits,
                       const machine::MachineParams& machine,
                       std::uint64_t seed = 1);

/// speedup = baseline / parallel (both in virtual ns).
double speedup(double baseline_ns, double parallel_ns);

}  // namespace dsm::sort
