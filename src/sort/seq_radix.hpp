// Sequential LSD radix sort.
//
// Two entry points:
//  * seq_radix_sort — plain fast sort (verification, reference results);
//  * local_radix_sort — the same algorithm instrumented for the virtual
//    clock: it measures the actual access pattern (bucket runs, active
//    buckets) while sorting and charges BUSY/LMEM accordingly. This is the
//    paper's sequential baseline (Table 1) when run on a one-process team,
//    and the local sorting phase of parallel sample sort.
//
// Both run on the kernel layer (sort/kernels.hpp): the selected backend
// changes how the host computes — one-sweep histograms, write-combined
// permutes, skipped dead passes — never the sorted output or any charged
// virtual time (the charge-invariance contract, DESIGN.md §9). The
// workspace-free overloads borrow the calling thread's workspace, so
// repeated callers (the service executor, sweep workers) allocate no
// per-sort scratch.
#pragma once

#include <span>

#include "common/types.hpp"
#include "sim/proc.hpp"
#include "sort/kernels.hpp"

namespace dsm::sort {

/// Number of LSD passes needed for radix `radix_bits` over keys bounded by
/// 2^kKeyBits (the paper: "the maximum key value determines how many
/// iterations will actually be needed" — our generators all span the full
/// 31-bit range).
int radix_passes(int radix_bits);

/// Pass count needed for keys bounded by `max_key` (at least one pass).
int radix_passes_for_max(int radix_bits, Key max_key);

/// Sort `keys` ascending using `tmp` as the toggle buffer (same size).
/// The sorted result is guaranteed to end up back in `keys`.
void seq_radix_sort(std::span<Key> keys, std::span<Key> tmp, int radix_bits);
void seq_radix_sort(std::span<Key> keys, std::span<Key> tmp, int radix_bits,
                    KernelBackend be, RadixWorkspace& ws);

/// Instrumented variant; sorts and charges ctx's clock. Result in `keys`.
/// Charged times are identical for every backend.
void local_radix_sort(sim::ProcContext& ctx, std::span<Key> keys,
                      std::span<Key> tmp, int radix_bits);
void local_radix_sort(sim::ProcContext& ctx, std::span<Key> keys,
                      std::span<Key> tmp, int radix_bits, KernelBackend be,
                      RadixWorkspace& ws);

/// Paired (kv32) variants: the payload lane mirrors every key movement,
/// so pays[i] stays attached to keys[i] through the sort. The key lane's
/// result — and, for the charged variant, every charged cycle — is
/// bit-identical to the unpaired sort on the same keys: payload movement
/// happens on the host outside the simulated machine (the record-oblivious
/// charging contract, DESIGN.md §11). Both lanes end up back in
/// keys/pays.
void seq_radix_sort_paired(std::span<Key> keys, std::span<keys::Payload> pays,
                           std::span<Key> tmp,
                           std::span<keys::Payload> pay_tmp, int radix_bits);
void seq_radix_sort_paired(std::span<Key> keys, std::span<keys::Payload> pays,
                           std::span<Key> tmp,
                           std::span<keys::Payload> pay_tmp, int radix_bits,
                           KernelBackend be, RadixWorkspace& ws);
void local_radix_sort_paired(sim::ProcContext& ctx, std::span<Key> keys,
                             std::span<keys::Payload> pays, std::span<Key> tmp,
                             std::span<keys::Payload> pay_tmp, int radix_bits);
void local_radix_sort_paired(sim::ProcContext& ctx, std::span<Key> keys,
                             std::span<keys::Payload> pays, std::span<Key> tmp,
                             std::span<keys::Payload> pay_tmp, int radix_bits,
                             KernelBackend be, RadixWorkspace& ws);

/// One instrumented counting pass over `keys` for digit `pass`: fills
/// `hist` (size 2^radix_bits) and charges the clock. Returns the number of
/// nonzero buckets. Shared by the parallel radix sorts. (A single
/// counting pass is the same loop under every backend; the optimized
/// backend's histogram win — one sweep for all passes — lives in
/// local_radix_sort, where the pass histograms are permutation-invariant.)
std::uint64_t charged_histogram(sim::ProcContext& ctx,
                                std::span<const Key> keys, int pass,
                                int radix_bits,
                                std::span<std::uint64_t> hist);

/// Backend- and workspace-aware overload: the optimized backend may use
/// the vectorized counting loop and shard across `ws.jobs` host threads.
/// The histogram and the charged time are identical either way.
std::uint64_t charged_histogram(sim::ProcContext& ctx,
                                std::span<const Key> keys, int pass,
                                int radix_bits, std::span<std::uint64_t> hist,
                                KernelBackend be, RadixWorkspace& ws);

/// One instrumented permutation of `keys` into `out` by digit `pass`,
/// using `offset` (size 2^radix_bits) as the running write cursors
/// (consumed). Charges stream-read + scattered-write + BUSY with the
/// measured run structure. `active` is the nonzero bucket count from the
/// histogram. out.size() is used as the destination footprint.
void charged_local_permute(sim::ProcContext& ctx, std::span<const Key> keys,
                           std::span<Key> out, int pass, int radix_bits,
                           std::span<std::uint64_t> offset,
                           std::uint64_t active);
void charged_local_permute(sim::ProcContext& ctx, std::span<const Key> keys,
                           std::span<Key> out, int pass, int radix_bits,
                           std::span<std::uint64_t> offset,
                           std::uint64_t active, KernelBackend be,
                           RadixWorkspace& ws);

}  // namespace dsm::sort
