#include "sort/merge_sort.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "sort/seq_radix.hpp"

namespace dsm::sort {
namespace {

using KeyTraits = keys::RecordTraits<Key>;

/// Charges of the backbone/stray split: the measured tail-array probes
/// (one fast-path compare per key on sorted-ish input, plus a binary
/// search per stray), the membership sweep, and the partition sweep
/// (read keys, write tmp — twice through the data).
void charge_split_sweep(sim::ProcContext& ctx, std::uint64_t n,
                        std::uint64_t probes) {
  const auto& cpu = ctx.params().cpu;
  ctx.busy_cycles(static_cast<double>(probes) * cpu.binary_search_cycles +
                  static_cast<double>(n) * cpu.compare_cycles);
  ctx.stream(2 * n * sizeof(Key), 2 * n * sizeof(Key));
}

/// Charges of one k-way merge producing `n` keys: the tournament
/// (ceil(log2 k) compares per element), the sequential read/write
/// streams, and the run-interleaving read pattern priced by the measured
/// segment count — few segments behave like a stream, ~n segments like a
/// gather over both buffers.
void charge_merge_round(sim::ProcContext& ctx, std::uint64_t n,
                        std::size_t ways, std::uint64_t segments) {
  if (n == 0) return;
  const auto& cpu = ctx.params().cpu;
  const int levels = ways > 1 ? bit_width_u64(ways - 1) : 0;
  ctx.busy_cycles(static_cast<double>(n) * levels * cpu.compare_cycles);
  ctx.stream(n * sizeof(Key), n * sizeof(Key));
  machine::AccessPattern p;
  p.accesses = n;
  p.elem_bytes = sizeof(Key);
  p.runs = std::max<std::uint64_t>(1, segments);
  p.active_regions = std::max<std::uint64_t>(1, ways);
  p.footprint_bytes = 2 * n * sizeof(Key);
  ctx.scattered(p);
}

/// Backend dispatch for one merge group. Output and the measured segment
/// count are backend-invariant (same selection rule).
std::uint64_t merge_group(KernelBackend be,
                          std::span<const std::span<const Key>> runs,
                          std::span<Key> out) {
  return be == KernelBackend::kReference
             ? linear_merge<KeyTraits>(runs, out)
             : loser_tree_merge<KeyTraits>(runs, out);
}

/// The driver shared by the charged and uncharged entry points
/// (ctx == nullptr charges nothing; outputs are identical either way).
void merge_sort_impl(sim::ProcContext* ctx, std::span<Key> keys,
                     std::span<Key> tmp, int radix_bits, KernelBackend be,
                     RadixWorkspace& ws) {
  const std::size_t n = keys.size();
  DSM_REQUIRE(tmp.size() >= n, "tmp must be at least as large");
  if (n <= 1) return;

  // Phase 1: backbone/stray split. The backbone is an exact longest
  // non-decreasing subsequence (patience method: tails[l] holds the
  // smallest possible tail of a chain of length l+1), so a burst of
  // out-of-place keys can never poison the chain the way a greedy scan
  // would — the split quality is a property of the input alone. The
  // common sorted-ish case takes the O(1) extends-the-chain fast path;
  // only displaced keys pay a binary search, and the probe count is the
  // measured charge input. Backbone fills tmp from the front in input
  // order (non-decreasing by construction), strays from the back.
  // Scratch lives in the workspace: the split runs once per local sort,
  // and fresh 4n/1n-byte allocations (plus geometric tail growth) used to
  // dominate the host cost of the sorted-ish fast path. Everything is
  // fully overwritten below, so nothing needs re-zeroing.
  constexpr std::uint32_t kNoPrev = 0xffffffffu;
  if (ws.lis_tails.size() < n) {
    ws.lis_tails.resize(n);
    ws.lis_tail_at.resize(n);
    ws.lis_prev.resize(n);
  }
  Key* const tails = ws.lis_tails.data();
  std::uint32_t* const tail_at = ws.lis_tail_at.data();
  std::uint32_t* const prev = ws.lis_prev.data();
  std::size_t chain = 0;      // number of tails so far
  Key last = 0;               // == tails[chain - 1] whenever chain > 0
  std::uint32_t last_at = kNoPrev;  // == tail_at[chain - 1] whenever chain > 0
  std::uint64_t probes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Key k = keys[i];
    ++probes;
    if (chain == 0 || k >= last) {  // extends-the-chain fast path
      prev[i] = last_at;
      tails[chain] = k;
      tail_at[chain] = static_cast<std::uint32_t>(i);
      ++chain;
      last = k;
      last_at = static_cast<std::uint32_t>(i);
    } else {
      std::size_t lo = 0;
      std::size_t hi = chain;
      while (lo < hi) {  // first tail strictly greater than k
        const std::size_t mid = lo + (hi - lo) / 2;
        ++probes;
        if (tails[mid] <= k) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      // lo < chain here: k < last guarantees a strictly-greater tail.
      tails[lo] = k;
      tail_at[lo] = static_cast<std::uint32_t>(i);
      if (lo + 1 == chain) {
        last = k;
        last_at = static_cast<std::uint32_t>(i);
      }
      prev[i] = lo > 0 ? tail_at[lo - 1] : kNoPrev;
    }
  }
  const std::size_t backbone = chain;
  if (ctx != nullptr) charge_split_sweep(*ctx, n, probes);
  const std::size_t strays = n - backbone;
  if (strays == 0) return;  // already sorted; keys untouched

  if (backbone >= n / 2) {
    // Nearly-sorted path: partition keys into tmp — backbone from the
    // front in input order (non-decreasing by construction), strays from
    // the back (forward input order, so the j-th stray sits at n-1-j).
    // One backward pass both walks the chain links and scatters: at each
    // chain index the key is backbone, everything between chain indices
    // is stray. (The general path below never materializes the partition
    // at all — phase 2 re-reads `keys` and tmp is just its toggle
    // buffer, so the chain walk would be wasted host passes there.)
    const std::size_t stray_at = n - strays;
    std::size_t bb = backbone;
    std::size_t stray_fill = stray_at;
    std::uint32_t at = last_at;
    for (std::size_t i = n; i-- > 0;) {
      if (i == at) {
        tmp[--bb] = keys[i];
        at = prev[i];
      } else {
        tmp[stray_fill++] = keys[i];
      }
    }
    DSM_DCHECK(bb == 0 && stray_fill == n,
               "backbone reconstruction must match LIS length");
    // Sort just the strays (the split left the full input partitioned
    // into tmp, so keys doubles as the LSD scratch), then one 2-way
    // merge back into keys.
    const std::span<Key> stray_span = tmp.subspan(stray_at, strays);
    if (ctx != nullptr) {
      local_radix_sort(*ctx, stray_span, keys.subspan(0, strays), radix_bits,
                       be, ws);
    } else {
      seq_radix_sort(stray_span, keys.subspan(0, strays), radix_bits, be, ws);
    }
    const std::span<const Key> group[2] = {tmp.first(backbone), stray_span};
    const std::uint64_t segments =
        merge_group(be, std::span<const std::span<const Key>>(group, 2), keys);
    if (ctx != nullptr) charge_merge_round(*ctx, n, 2, segments);
    return;
  }

  // Phase 2: sorted-run generation — cache-sized blocks through the
  // charged LSD kernels (keys in place, tmp as the toggle buffer).
  std::vector<std::size_t> bounds{0};
  for (std::size_t off = 0; off < n; off += kMergeRunBlock) {
    const std::size_t len = std::min(kMergeRunBlock, n - off);
    if (ctx != nullptr) {
      local_radix_sort(*ctx, keys.subspan(off, len), tmp.subspan(off, len),
                       radix_bits, be, ws);
    } else {
      seq_radix_sort(keys.subspan(off, len), tmp.subspan(off, len), radix_bits,
                     be, ws);
    }
    bounds.push_back(off + len);
  }

  // Phase 3: merge rounds, fanout <= kMergeFanout, toggling keys/tmp.
  std::span<Key> src = keys;
  std::span<Key> dst = tmp.subspan(0, n);
  std::vector<std::span<const Key>> group;
  while (bounds.size() > 2) {
    std::vector<std::size_t> next{0};
    for (std::size_t g = 0; g + 1 < bounds.size(); g += kMergeFanout) {
      const std::size_t ways = std::min(kMergeFanout, bounds.size() - 1 - g);
      group.assign(ways, {});
      for (std::size_t r = 0; r < ways; ++r) {
        group[r] =
            src.subspan(bounds[g + r], bounds[g + r + 1] - bounds[g + r]);
      }
      const std::size_t lo = bounds[g];
      const std::size_t hi = bounds[g + ways];
      const std::uint64_t segments = merge_group(
          be, std::span<const std::span<const Key>>(group.data(), ways),
          dst.subspan(lo, hi - lo));
      if (ctx != nullptr) charge_merge_round(*ctx, hi - lo, ways, segments);
      next.push_back(hi);
    }
    std::swap(src, dst);
    bounds = std::move(next);
  }
  if (src.data() != keys.data()) {
    std::copy(src.begin(), src.end(), keys.begin());
    if (ctx != nullptr) {
      ctx->stream(2 * n * sizeof(Key), 2 * n * sizeof(Key));
    }
  }
}

}  // namespace

void seq_merge_sort(std::span<Key> keys, std::span<Key> tmp, int radix_bits) {
  seq_merge_sort(keys, tmp, radix_bits, default_kernel_backend(),
                 tls_radix_workspace());
}

void seq_merge_sort(std::span<Key> keys, std::span<Key> tmp, int radix_bits,
                    KernelBackend be, RadixWorkspace& ws) {
  merge_sort_impl(nullptr, keys, tmp, radix_bits, be, ws);
}

void local_merge_sort(sim::ProcContext& ctx, std::span<Key> keys,
                      std::span<Key> tmp, int radix_bits) {
  local_merge_sort(ctx, keys, tmp, radix_bits, default_kernel_backend(),
                   tls_radix_workspace());
}

void local_merge_sort(sim::ProcContext& ctx, std::span<Key> keys,
                      std::span<Key> tmp, int radix_bits, KernelBackend be,
                      RadixWorkspace& ws) {
  merge_sort_impl(&ctx, keys, tmp, radix_bits, be, ws);
}

void local_merge_sort_paired(sim::ProcContext& ctx, std::span<Key> keys,
                             std::span<keys::Payload> pays,
                             std::span<Key> tmp, int radix_bits) {
  local_merge_sort_paired(ctx, keys, pays, tmp, radix_bits,
                          default_kernel_backend(), tls_radix_workspace());
}

void local_merge_sort_paired(sim::ProcContext& ctx, std::span<Key> keys,
                             std::span<keys::Payload> pays,
                             std::span<Key> tmp, int radix_bits,
                             KernelBackend be, RadixWorkspace& ws) {
  DSM_REQUIRE(pays.size() == keys.size(),
              "payload lane must match the key span");
  const std::size_t n = keys.size();
  // Host-side stable pair mirror (uncharged, DESIGN.md §11) — same
  // discipline as local_msd_sort_paired.
  std::vector<keys::KeyPayload32> recs(n);
  std::vector<keys::KeyPayload32> rtmp(n);
  for (std::size_t i = 0; i < n; ++i) {
    recs[i] = {keys[i], pays[i]};
  }
  local_merge_sort(ctx, keys, tmp, radix_bits, be, ws);
  keys::record_lsd_sort<keys::RecordTraits<keys::KeyPayload32>>(recs, rtmp,
                                                                11);
  for (std::size_t i = 0; i < n; ++i) {
    pays[i] = recs[i].payload;
  }
}

}  // namespace dsm::sort
