// K-way multiway mergesort — the comparison-based counterpoint to the
// radix family, and the building block for external sorting (ROADMAP
// item 3).
//
// Shape:
//   1. a backbone/stray split sweep (exact longest non-decreasing
//      subsequence via the patience method) peels an
//      ascending backbone off the input. No strays → the input was
//      sorted and one sweep ends the sort. A dominant backbone (≥ n/2)
//      takes the nearly-sorted path: LSD-sort just the strays, then one
//      2-way merge — the regime where mergesort beats every radix sort;
//   2. otherwise: cache-sized sorted-run generation (kMergeRunBlock
//      keys per run, sorted with the existing LSD kernels so runs get
//      every kernel-layer win), then rounds of k-way merging with
//      fanout ≤ kMergeFanout.
//
// The merge itself exists twice under the kernel-backend contract
// (DESIGN.md §9): kReference picks each output element with a linear
// scan over the k run heads; kOptimized runs a loser tree (log2 k
// comparisons per element). Both implement the same selection rule —
// smallest key, ties to the lowest run index — so outputs and every
// measured charge input (the run-switch segment count) are
// bit-identical.
//
// Like msd_radix.hpp, the uncharged cores are header templates over
// RecordTraits (usable from sanitizer closures without the simulator);
// the charged local_* entry points live in merge_sort.cpp. Charged
// paired variants keep the record-oblivious contract (§11) with a
// host-side stable pair mirror.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "keys/record.hpp"
#include "sim/proc.hpp"
#include "sort/kernels.hpp"

namespace dsm::sort {

/// Keys per generated run: 2^14 keys = 64 KiB, so one run plus its
/// toggle buffer stays cache-resident during generation.
inline constexpr std::size_t kMergeRunBlock = std::size_t{1} << 14;

/// Maximum ways per merge round: 64 runs keep the head working set (and
/// the loser tree) inside L1 while one round covers 2^20 keys.
inline constexpr std::size_t kMergeFanout = 64;

/// Linear-scan k-way merge of sorted `runs` into `out` (out.size() must
/// equal the total run length): each output element is the smallest live
/// head, ties to the lowest run index. Returns the number of output
/// segments drawn from a single run without switching — a pure function
/// of the run contents that the charged callers price (few segments =
/// stream-like reads; ~n segments = a gather).
template <typename Traits>
std::uint64_t linear_merge(
    std::span<const std::span<const typename Traits::record_type>> runs,
    std::span<typename Traits::record_type> out) {
  const std::size_t k = runs.size();
  std::vector<std::size_t> pos(k, 0);
  std::uint64_t segments = 0;
  std::size_t prev = k;
  for (std::size_t o = 0; o < out.size(); ++o) {
    std::size_t best = k;
    for (std::size_t r = 0; r < k; ++r) {
      if (pos[r] >= runs[r].size()) continue;
      if (best == k ||
          Traits::compare(runs[r][pos[r]], runs[best][pos[best]])) {
        best = r;
      }
    }
    DSM_REQUIRE(best != k, "merge output larger than its runs");
    out[o] = runs[best][pos[best]++];
    segments += best != prev ? 1 : 0;
    prev = best;
  }
  return segments;
}

/// Loser-tree k-way merge: identical selection rule, output, and segment
/// count as linear_merge, at log2(k) comparisons per element.
template <typename Traits>
std::uint64_t loser_tree_merge(
    std::span<const std::span<const typename Traits::record_type>> runs,
    std::span<typename Traits::record_type> out) {
  using R = typename Traits::record_type;
  const std::size_t k = runs.size();
  if (k == 1) {
    DSM_REQUIRE(out.size() == runs[0].size(),
                "merge output larger than its runs");
    std::copy(runs[0].begin(), runs[0].end(), out.begin());
    return out.empty() ? 0 : 1;
  }
  const std::size_t K = std::bit_ceil(k);  // leaves, padded with exhausted
  std::vector<std::size_t> pos(k, 0);
  const auto exhausted = [&](std::size_t i) {
    return i >= k || pos[i] >= runs[i].size();
  };
  const auto head = [&](std::size_t i) -> const R& { return runs[i][pos[i]]; };
  // Does contestant i strictly beat j? Exhausted lanes lose to everything;
  // key ties go to the lower run index (the stability rule).
  const auto wins = [&](std::size_t i, std::size_t j) {
    if (exhausted(i)) return false;
    if (exhausted(j)) return true;
    if (Traits::compare(head(i), head(j))) return true;
    if (Traits::compare(head(j), head(i))) return false;
    return i < j;
  };
  // loser[node] holds the loser of the match at internal node `node`
  // (1..K-1); loser[0] holds the overall winner. Built bottom-up.
  std::vector<std::size_t> loser(K);
  {
    std::vector<std::size_t> win(2 * K);
    for (std::size_t i = 0; i < K; ++i) win[K + i] = i;
    for (std::size_t node = K - 1; node >= 1; --node) {
      const std::size_t a = win[2 * node];
      const std::size_t b = win[2 * node + 1];
      const bool a_wins = wins(a, b) || !wins(b, a);  // tie → lower index a
      win[node] = a_wins ? a : b;
      loser[node] = a_wins ? b : a;
    }
    loser[0] = win[1];
  }
  const auto replay = [&](std::size_t leaf) {
    std::size_t w = leaf;
    for (std::size_t node = (K + leaf) >> 1; node >= 1; node >>= 1) {
      if (wins(loser[node], w)) std::swap(loser[node], w);
    }
    loser[0] = w;
  };
  std::uint64_t segments = 0;
  std::size_t prev = K;
  for (std::size_t o = 0; o < out.size(); ++o) {
    const std::size_t w = loser[0];
    DSM_REQUIRE(!exhausted(w), "merge output larger than its runs");
    out[o] = head(w);
    ++pos[w];
    segments += w != prev ? 1 : 0;
    prev = w;
    replay(w);
  }
  return segments;
}

/// Generic uncharged mergesort over records: sorted-run generation with
/// the stable LSD pair sort, then loser-tree rounds. Result in `recs`;
/// stable (runs are generated stably and ties merge lowest-run-first).
/// The semantic core the charged entry points are tested against.
template <typename Traits>
void record_merge_sort(std::span<typename Traits::record_type> recs,
                       std::span<typename Traits::record_type> tmp,
                       int radix_bits) {
  using R = typename Traits::record_type;
  const std::size_t n = recs.size();
  DSM_REQUIRE(tmp.size() >= n, "tmp must be at least as large");
  if (n <= 1) return;
  std::vector<std::size_t> bounds{0};
  for (std::size_t off = 0; off < n; off += kMergeRunBlock) {
    const std::size_t len = std::min(kMergeRunBlock, n - off);
    keys::record_lsd_sort<Traits>(recs.subspan(off, len),
                                  tmp.subspan(off, len), radix_bits);
    bounds.push_back(off + len);
  }
  std::span<R> src = recs;
  std::span<R> dst = tmp.subspan(0, n);
  while (bounds.size() > 2) {
    std::vector<std::size_t> next{0};
    for (std::size_t g = 0; g + 1 < bounds.size(); g += kMergeFanout) {
      const std::size_t ways =
          std::min(kMergeFanout, bounds.size() - 1 - g);
      std::vector<std::span<const R>> group(ways);
      for (std::size_t r = 0; r < ways; ++r) {
        group[r] = src.subspan(bounds[g + r], bounds[g + r + 1] - bounds[g + r]);
      }
      const std::size_t lo = bounds[g];
      const std::size_t hi = bounds[g + ways];
      loser_tree_merge<Traits>(
          std::span<const std::span<const R>>(group.data(), group.size()),
          dst.subspan(lo, hi - lo));
      next.push_back(hi);
    }
    std::swap(src, dst);
    bounds = std::move(next);
  }
  if (src.data() != recs.data()) {
    std::copy(src.begin(), src.end(), recs.begin());
  }
}

/// Uncharged key sort (host-only; bench + tests). `tmp` is the toggle /
/// stray buffer, same size as keys. kReference merges with the linear
/// scan, kOptimized with the loser tree — identical output.
void seq_merge_sort(std::span<Key> keys, std::span<Key> tmp, int radix_bits);
void seq_merge_sort(std::span<Key> keys, std::span<Key> tmp, int radix_bits,
                    KernelBackend be, RadixWorkspace& ws);

/// Instrumented variant; sorts and charges ctx's clock. Result in `keys`.
/// Charged times are identical for every backend: pure functions of the
/// key sequence (split sweep, the charged LSD run sorts, and per merge
/// round the measured run-switch segment count).
void local_merge_sort(sim::ProcContext& ctx, std::span<Key> keys,
                      std::span<Key> tmp, int radix_bits);
void local_merge_sort(sim::ProcContext& ctx, std::span<Key> keys,
                      std::span<Key> tmp, int radix_bits, KernelBackend be,
                      RadixWorkspace& ws);

/// Paired (kv32) variant: charges and key lane bit-identical to the
/// unpaired sort; payload arrangement re-derived host-side with the
/// stable pair sort (the split/merge data path is not itself mirrored).
void local_merge_sort_paired(sim::ProcContext& ctx, std::span<Key> keys,
                             std::span<keys::Payload> pays,
                             std::span<Key> tmp, int radix_bits);
void local_merge_sort_paired(sim::ProcContext& ctx, std::span<Key> keys,
                             std::span<keys::Payload> pays,
                             std::span<Key> tmp, int radix_bits,
                             KernelBackend be, RadixWorkspace& ws);

}  // namespace dsm::sort
