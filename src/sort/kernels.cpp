#include "sort/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/bits.hpp"
#include "common/error.hpp"

namespace dsm::sort {
namespace {

KernelBackend env_kernel_backend() {
  const char* env = std::getenv("DSMSORT_KERNELS");
  if (env == nullptr || *env == '\0') return KernelBackend::kOptimized;
  return kernel_backend_from_name(env);
}

std::atomic<KernelBackend>& backend_override() {
  static std::atomic<KernelBackend> b{env_kernel_backend()};
  return b;
}

}  // namespace

const char* kernel_backend_name(KernelBackend b) {
  switch (b) {
    case KernelBackend::kReference: return "reference";
    case KernelBackend::kOptimized: return "optimized";
  }
  return "?";
}

KernelBackend kernel_backend_from_name(const std::string& name) {
  if (name == "reference") return KernelBackend::kReference;
  if (name == "optimized") return KernelBackend::kOptimized;
  throw Error("kernel backend must be 'reference' or 'optimized', got: " +
              name);
}

KernelBackend default_kernel_backend() {
  return backend_override().load(std::memory_order_relaxed);
}

void set_default_kernel_backend(KernelBackend b) {
  backend_override().store(b, std::memory_order_relaxed);
}

void RadixWorkspace::prepare(int radix_bits) {
  DSM_REQUIRE(radix_bits >= 1 && radix_bits <= 20, "radix bits out of range");
  const std::size_t buckets = std::size_t{1} << radix_bits;
  if (hist.size() < buckets) hist.resize(buckets);
}

void RadixWorkspace::prepare(int radix_bits, int passes) {
  prepare(radix_bits);
  DSM_REQUIRE(passes >= 1, "need at least one pass");
  const std::size_t buckets = std::size_t{1} << radix_bits;
  const std::size_t rows = static_cast<std::size_t>(passes) * buckets;
  if (pass_hist.size() < rows) pass_hist.resize(rows);
  // Staging only for bucket counts the WC permute can ever engage for
  // (past kWcMaxStagingBytes it always falls back to direct stores).
  if (buckets * kWcLineKeys * sizeof(Key) <= kWcMaxStagingBytes &&
      wc_keys.size() < buckets * kWcLineKeys) {
    wc_keys.resize(buckets * kWcLineKeys);
    wc_fill.assign(buckets, 0);
    wc_need.assign(buckets, 0);
  }
}

RadixWorkspace& tls_radix_workspace() {
  thread_local RadixWorkspace ws;
  return ws;
}

std::uint64_t count_active(std::span<const std::uint64_t> hist) {
  std::uint64_t active = 0;
  for (const std::uint64_t c : hist) active += c != 0 ? 1 : 0;
  return active;
}

std::uint64_t histogram_kernel(KernelBackend /*be*/,
                               std::span<const Key> keys, int pass,
                               int radix_bits,
                               std::span<std::uint64_t> hist) {
  DSM_REQUIRE(hist.size() == std::size_t{1} << radix_bits,
              "histogram span size mismatch");
  std::fill(hist.begin(), hist.end(), 0);
  for (const Key k : keys) ++hist[radix_digit(k, pass, radix_bits)];
  return count_active(hist);
}

void multi_histogram_kernel(KernelBackend be, std::span<const Key> keys,
                            int passes, int radix_bits,
                            std::span<std::uint64_t> pass_hist) {
  DSM_REQUIRE(passes >= 1, "need at least one pass");
  const std::size_t buckets = std::size_t{1} << radix_bits;
  DSM_REQUIRE(pass_hist.size() >= static_cast<std::size_t>(passes) * buckets,
              "pass_hist too small");
  if (be == KernelBackend::kReference) {
    for (int p = 0; p < passes; ++p) {
      (void)histogram_kernel(be, keys, p, radix_bits,
                             pass_hist.subspan(
                                 static_cast<std::size_t>(p) * buckets,
                                 buckets));
    }
    return;
  }
  std::fill(pass_hist.begin(),
            pass_hist.begin() +
                static_cast<std::ptrdiff_t>(
                    static_cast<std::size_t>(passes) * buckets),
            0);
  std::uint64_t* const h = pass_hist.data();
  const auto mask = (std::uint32_t{1} << radix_bits) - 1u;
  switch (passes) {
    case 2:
      for (const Key k : keys) {
        ++h[k & mask];
        ++h[buckets + ((k >> radix_bits) & mask)];
      }
      return;
    case 3:
      for (const Key k : keys) {
        ++h[k & mask];
        ++h[buckets + ((k >> radix_bits) & mask)];
        ++h[2 * buckets + ((k >> (2 * radix_bits)) & mask)];
      }
      return;
    case 4:
      for (const Key k : keys) {
        ++h[k & mask];
        ++h[buckets + ((k >> radix_bits) & mask)];
        ++h[2 * buckets + ((k >> (2 * radix_bits)) & mask)];
        ++h[3 * buckets + ((k >> (3 * radix_bits)) & mask)];
      }
      return;
    default:
      for (const Key k : keys) {
        std::uint32_t v = k;
        for (int p = 0; p < passes; ++p) {
          ++h[static_cast<std::size_t>(p) * buckets + (v & mask)];
          v >>= radix_bits;
        }
      }
      return;
  }
}

namespace {

/// The seed permute loop, kept verbatim apart from the hoisted digit: the
/// digit is computed once per key and reused for both the scattered write
/// and the run update (the seed recomputed it when per-element assertions
/// were compiled in).
std::uint64_t permute_reference(std::span<const Key> in, std::span<Key> out,
                                int pass, int radix_bits,
                                std::span<std::uint64_t> cursor) {
  std::uint64_t runs = 0;
  std::uint32_t prev_digit = ~0u;
  const std::size_t n = in.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Key k = in[i];
    const std::uint32_t d = radix_digit(k, pass, radix_bits);
    const std::uint64_t pos = cursor[d]++;
    DSM_DCHECK(pos < out.size(), "permutation writes past the output");
    out[pos] = k;
    runs += d != prev_digit ? 1 : 0;
    prev_digit = d;
  }
  return runs;
}

/// Software write-combining permute: stage each bucket's keys in a
/// cache-line buffer and flush it contiguously when full. This is the
/// paper's CC-SAS-NEW restructuring (locally buffer temporally-scattered
/// writes, then move them as blocks) applied to the host cache hierarchy:
/// instead of keeping 2^r partially-written destination lines live at
/// once, the working set is the 64-byte-per-bucket staging area plus one
/// destination line per flush.
std::uint64_t permute_write_combined(std::span<const Key> in,
                                     std::span<Key> out, int pass,
                                     int radix_bits,
                                     std::span<std::uint64_t> cursor,
                                     RadixWorkspace& ws) {
  const std::size_t buckets = std::size_t{1} << radix_bits;
  DSM_CHECK(ws.wc_keys.size() >= buckets * kWcLineKeys &&
                ws.wc_fill.size() >= buckets,
            "write-combining staging not prepared");
  Key* const wc = ws.wc_keys.data();
  std::uint32_t* const fill = ws.wc_fill.data();
  Key* const out_data = out.data();
  std::uint64_t runs = 0;
  std::uint32_t prev_digit = ~0u;
  for (const Key k : in) {
    const std::uint32_t d = radix_digit(k, pass, radix_bits);
    runs += d != prev_digit ? 1 : 0;
    prev_digit = d;
    std::uint32_t f = fill[d];
    wc[d * kWcLineKeys + f] = k;
    if (++f == kWcLineKeys) {
      const std::uint64_t pos = cursor[d];
      DSM_DCHECK(pos + kWcLineKeys <= out.size(),
                 "permutation writes past the output");
      std::memcpy(out_data + pos, wc + d * kWcLineKeys,
                  kWcLineKeys * sizeof(Key));
      cursor[d] = pos + kWcLineKeys;
      f = 0;
    }
    fill[d] = f;
  }
  // Drain partial lines in bucket order, restoring the all-zero staging
  // invariant for the next call.
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::uint32_t f = fill[b];
    if (f == 0) continue;
    const std::uint64_t pos = cursor[b];
    DSM_DCHECK(pos + f <= out.size(), "permutation writes past the output");
    std::memcpy(out_data + pos, wc + b * kWcLineKeys, f * sizeof(Key));
    cursor[b] = pos + f;
    fill[b] = 0;
  }
  return runs;
}

#if defined(__SSE2__)
/// WC permute variant for DRAM-bound passes: identical staging, but full
/// lines are flushed with non-temporal stores. The destination is
/// write-only until the next pass reads it back, so streaming past the
/// cache saves the read-for-ownership of every destination line (a third
/// of the pass's memory traffic). Each bucket's first flush is shortened
/// to the next 64-byte destination boundary so every streaming flush
/// covers exactly one line — an unaligned flush would straddle two lines
/// and the CPU's fill buffers would evict both as costly partial writes.
std::uint64_t permute_wc_stream(std::span<const Key> in, std::span<Key> out,
                                int pass, int radix_bits,
                                std::span<std::uint64_t> cursor,
                                RadixWorkspace& ws) {
  const std::size_t buckets = std::size_t{1} << radix_bits;
  DSM_CHECK(ws.wc_keys.size() >= buckets * kWcLineKeys &&
                ws.wc_fill.size() >= buckets && ws.wc_need.size() >= buckets,
            "write-combining staging not prepared");
  Key* const wc = ws.wc_keys.data();
  std::uint32_t* const fill = ws.wc_fill.data();
  std::uint32_t* const need = ws.wc_need.data();
  Key* const out_data = out.data();
  for (std::size_t b = 0; b < buckets; ++b) {
    const auto addr = reinterpret_cast<std::uintptr_t>(out_data + cursor[b]);
    const std::size_t off = (addr % 64u) / sizeof(Key);
    need[b] =
        static_cast<std::uint32_t>(off == 0 ? kWcLineKeys : kWcLineKeys - off);
  }
  std::uint64_t runs = 0;
  std::uint32_t prev_digit = ~0u;
  for (const Key k : in) {
    const std::uint32_t d = radix_digit(k, pass, radix_bits);
    runs += d != prev_digit ? 1 : 0;
    prev_digit = d;
    std::uint32_t f = fill[d];
    wc[d * kWcLineKeys + f] = k;
    if (++f == need[d]) {
      const std::uint64_t pos = cursor[d];
      DSM_DCHECK(pos + f <= out.size(),
                 "permutation writes past the output");
      Key* const dst = out_data + pos;
      const Key* const src = wc + d * kWcLineKeys;
      if (f == kWcLineKeys) {
        auto* const q = reinterpret_cast<__m128i*>(dst);
        const auto* const s = reinterpret_cast<const __m128i*>(src);
        _mm_stream_si128(q + 0, _mm_loadu_si128(s + 0));
        _mm_stream_si128(q + 1, _mm_loadu_si128(s + 1));
        _mm_stream_si128(q + 2, _mm_loadu_si128(s + 2));
        _mm_stream_si128(q + 3, _mm_loadu_si128(s + 3));
      } else {
        // The alignment-phasing flush: ordinary stores, then every later
        // flush of this bucket starts on a line boundary.
        std::memcpy(dst, src, f * sizeof(Key));
        need[d] = kWcLineKeys;
      }
      cursor[d] = pos + f;
      f = 0;
    }
    fill[d] = f;
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::uint32_t f = fill[b];
    if (f == 0) continue;
    const std::uint64_t pos = cursor[b];
    DSM_DCHECK(pos + f <= out.size(), "permutation writes past the output");
    std::memcpy(out_data + pos, wc + b * kWcLineKeys, f * sizeof(Key));
    cursor[b] = pos + f;
    fill[b] = 0;
  }
  // Streaming stores are weakly ordered; fence before the caller's next
  // read or inter-thread hand-off of the destination.
  _mm_sfence();
  return runs;
}
#endif  // __SSE2__

}  // namespace

std::uint64_t permute_kernel(KernelBackend be, std::span<const Key> in,
                             std::span<Key> out, int pass, int radix_bits,
                             std::span<std::uint64_t> cursor,
                             std::uint64_t active, RadixWorkspace& ws) {
  const std::size_t buckets = std::size_t{1} << radix_bits;
  DSM_REQUIRE(cursor.size() == buckets, "cursor span size mismatch");
  if (be == KernelBackend::kReference) {
    return permute_reference(in, out, pass, radix_bits, cursor);
  }
  const std::size_t n = in.size();
  if (n == 0) return 0;
  if (active == 1) {
    // Every key carries the same digit (a dead pass, or a degenerate
    // distribution): the permutation is one contiguous copy.
    const std::uint32_t d = radix_digit(in[0], pass, radix_bits);
    const std::uint64_t pos = cursor[d];
    DSM_DCHECK(pos + n <= out.size(), "permutation writes past the output");
    std::memcpy(out.data() + pos, in.data(), n * sizeof(Key));
    cursor[d] = pos + n;
    return 1;
  }
  if (buckets * kWcLineKeys * sizeof(Key) <= kWcMaxStagingBytes) {
    const bool dram_bound = n * sizeof(Key) >= kWcMinFootprintBytes;
    // Staging pays for itself once buckets' write streams overflow the
    // cache AND the average bucket fills at least one line (below that
    // the staging copy and drain are pure overhead on an L1-resident
    // scatter).
    const bool amortized = n >= buckets * kWcLineKeys;
    if (dram_bound || (buckets >= kWcMinBuckets && amortized)) {
      ws.prepare(radix_bits, 1);  // ensure staging even for direct callers
#if defined(__SSE2__)
      if (dram_bound) {
        return permute_wc_stream(in, out, pass, radix_bits, cursor, ws);
      }
#endif
      return permute_write_combined(in, out, pass, radix_bits, cursor, ws);
    }
  }
  return permute_reference(in, out, pass, radix_bits, cursor);
}

}  // namespace dsm::sort
