#include "sort/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <thread>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/bits.hpp"
#include "common/error.hpp"

namespace dsm::sort {
namespace {

KernelBackend env_kernel_backend() {
  const char* env = std::getenv("DSMSORT_KERNELS");
  if (env == nullptr || *env == '\0') return KernelBackend::kOptimized;
  return kernel_backend_from_name(env);
}

std::atomic<KernelBackend>& backend_override() {
  static std::atomic<KernelBackend> b{env_kernel_backend()};
  return b;
}

/// Full-string parse of a numeric tuning env var, the DSMSORT_JOBS
/// discipline: trailing garbage, whitespace, overflow, and out-of-range
/// values are checked errors, not a silent fall-back to the default — a
/// service launched with a mistyped knob should fail at startup, not
/// quietly run untuned. Returns -1 when the variable is unset or empty.
long long env_number(const char* name, long long min_value,
                     long long max_value, const char* what) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return -1;
  return parse_kernel_env_number(name, env, min_value, max_value, what);
}

std::size_t env_staging_bytes() {
  const long long kb =
      env_number("DSMSORT_KERNEL_STAGING_KB", 0, 1ll << 32,
                 "a base-10 KiB count >= 0 (0 disables one-level staging)");
  if (kb < 0) return kWcDefaultStagingBytes;
  return static_cast<std::size_t>(kb) * 1024;
}

std::size_t env_wc_min_buckets() {
  const long long b = env_number("DSMSORT_KERNEL_WC_BUCKETS", 1, 1ll << 30,
                                 "a base-10 bucket count >= 1");
  if (b < 0) return kWcDefaultMinBuckets;
  return static_cast<std::size_t>(b);
}

int env_kernel_jobs() {
  const long long j =
      env_number("DSMSORT_KERNEL_JOBS", 0, 1ll << 16,
                 "a base-10 thread count >= 0 (0 = all hardware threads)");
  if (j < 0) return 1;
  return static_cast<int>(j);
}

std::atomic<std::size_t>& staging_override() {
  static std::atomic<std::size_t> v{env_staging_bytes()};
  return v;
}

std::atomic<std::size_t>& wc_min_buckets_override() {
  static std::atomic<std::size_t> v{env_wc_min_buckets()};
  return v;
}

std::atomic<std::size_t>& shard_min_keys_override() {
  static std::atomic<std::size_t> v{kDefaultShardMinKeys};
  return v;
}

std::atomic<int>& kernel_jobs_override() {
  static std::atomic<int> v{env_kernel_jobs()};
  return v;
}

#if defined(__AVX2__)
bool host_avx2() {
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
}
#endif

}  // namespace

long long parse_kernel_env_number(const char* name, const char* text,
                                  long long min_value, long long max_value,
                                  const char* what) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  // strtoll itself would skip leading whitespace; reject it explicitly so
  // the accepted language is exactly an optional sign plus digits.
  if (std::isspace(static_cast<unsigned char>(*text)) || end == text ||
      *end != '\0' || errno == ERANGE || v < min_value || v > max_value) {
    throw Error(std::string(name) + " must be " + what + ", got: \"" + text +
                "\"");
  }
  return v;
}

const char* kernel_backend_name(KernelBackend b) {
  return enum_name<KernelBackend>(kKernelBackendNames, b);
}

KernelBackend kernel_backend_from_name(const std::string& name) {
  return enum_from_name_or_throw<KernelBackend>(kKernelBackendNames, name,
                                                "kernel backend");
}

Result<KernelBackend> try_kernel_backend_from_name(const std::string& name) {
  return enum_from_name<KernelBackend>(kKernelBackendNames, name,
                                       "kernel backend");
}

KernelBackend default_kernel_backend() {
  return backend_override().load(std::memory_order_relaxed);
}

void set_default_kernel_backend(KernelBackend b) {
  backend_override().store(b, std::memory_order_relaxed);
}

std::size_t kernel_staging_bytes() {
  return staging_override().load(std::memory_order_relaxed);
}

void set_kernel_staging_bytes(std::size_t bytes) {
  staging_override().store(bytes, std::memory_order_relaxed);
}

std::size_t kernel_wc_min_buckets() {
  return wc_min_buckets_override().load(std::memory_order_relaxed);
}

void set_kernel_wc_min_buckets(std::size_t buckets) {
  DSM_REQUIRE(buckets >= 1, "wc min-buckets gate must be >= 1");
  wc_min_buckets_override().store(buckets, std::memory_order_relaxed);
}

std::size_t kernel_shard_min_keys() {
  return shard_min_keys_override().load(std::memory_order_relaxed);
}

void set_kernel_shard_min_keys(std::size_t keys) {
  DSM_REQUIRE(keys >= 1, "shard floor must be >= 1 key");
  shard_min_keys_override().store(keys, std::memory_order_relaxed);
}

int default_kernel_jobs() {
  const int v = kernel_jobs_override().load(std::memory_order_relaxed);
  if (v > 0) return v;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void set_default_kernel_jobs(int jobs) {
  DSM_REQUIRE(jobs >= 0, "kernel jobs must be >= 0 (0 = hardware threads)");
  kernel_jobs_override().store(jobs, std::memory_order_relaxed);
}

int effective_kernel_shards(int jobs, std::size_t n) {
  const int j = jobs != 0 ? jobs : default_kernel_jobs();
  if (j <= 1) return 1;
  const std::size_t floor_keys = kernel_shard_min_keys();
  const std::size_t by_n = n / floor_keys;
  if (by_n <= 1) return 1;
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(j), by_n));
}

const char* kernel_isa_name() {
#if defined(__AVX2__)
  if (host_avx2()) return "avx2";
#endif
#if defined(__SSE2__)
  return "sse2";
#else
  return "scalar";
#endif
}

void RadixWorkspace::prepare(int radix_bits) {
  DSM_REQUIRE(radix_bits >= 1 && radix_bits <= 20, "radix bits out of range");
  const std::size_t buckets = std::size_t{1} << radix_bits;
  if (hist.size() < buckets) hist.resize(buckets);
}

void RadixWorkspace::prepare(int radix_bits, int passes) {
  prepare(radix_bits);
  DSM_REQUIRE(passes >= 1, "need at least one pass");
  const std::size_t buckets = std::size_t{1} << radix_bits;
  const std::size_t rows = static_cast<std::size_t>(passes) * buckets;
  if (pass_hist.size() < rows) pass_hist.resize(rows);
  // One staging line per bucket while that fits the tunable cap; past it
  // the permute switches to the two-level scatter, whose first level
  // needs at most 2^kTwoLevelMaxCoarseBits lines.
  std::size_t lines = buckets;
  if (buckets * kWcLineKeys * sizeof(Key) > kernel_staging_bytes()) {
    lines = std::min(buckets,
                     std::size_t{1} << kTwoLevelMaxCoarseBits);
  }
  if (wc_keys.size() < lines * kWcLineKeys) {
    wc_keys.resize(lines * kWcLineKeys);
    wc_fill.assign(lines, 0);
    wc_need.assign(lines, 0);
  }
}

RadixWorkspace& tls_radix_workspace() {
  thread_local RadixWorkspace ws;
  return ws;
}

std::uint64_t count_active(std::span<const std::uint64_t> hist) {
  std::uint64_t active = 0;
  for (const std::uint64_t c : hist) active += c != 0 ? 1 : 0;
  return active;
}

namespace {

/// Even key-range split for the threaded mode. Shards only exist when
/// n >= 2 * kernel_shard_min_keys(), so every shard is non-empty.
std::size_t shard_begin(std::size_t n, int shards, int t) {
  return n * static_cast<std::size_t>(t) / static_cast<std::size_t>(shards);
}

/// Run fn(0..shards-1) on `shards` host threads (the caller is shard 0)
/// and rethrow the first shard failure after all have joined.
template <typename Fn>
void run_shards(int shards, const Fn& fn) {
  std::vector<std::exception_ptr> errs(static_cast<std::size_t>(shards));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(shards) - 1);
  for (int t = 1; t < shards; ++t) {
    pool.emplace_back([&fn, &errs, t] {
      try {
        fn(t);
      } catch (...) {
        errs[static_cast<std::size_t>(t)] = std::current_exception();
      }
    });
  }
  try {
    fn(0);
  } catch (...) {
    errs[0] = std::current_exception();
  }
  for (auto& th : pool) th.join();
  for (const auto& e : errs) {
    if (e) std::rethrow_exception(e);
  }
}

#if defined(__AVX2__)
/// Vectorized digit extraction for the counting pass: eight keys shifted
/// and masked at once, then eight scalar increments from the lane
/// buffer (the scattered increment itself cannot be vectorized without
/// conflict detection). Compiled only in the DSMSORT_NATIVE TU and
/// dispatched behind a runtime CPU check; counts are exactly the scalar
/// loop's.
void histogram_span_avx2(const Key* keys, std::size_t n, int shift,
                         std::uint32_t mask, std::uint64_t* hist) {
  const __m256i vmask = _mm256_set1_epi32(static_cast<int>(mask));
  const __m128i vshift = _mm_cvtsi32_si128(shift);
  alignas(32) std::uint32_t d[8];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    v = _mm256_and_si256(_mm256_srl_epi32(v, vshift), vmask);
    _mm256_store_si256(reinterpret_cast<__m256i*>(d), v);
    ++hist[d[0]];
    ++hist[d[1]];
    ++hist[d[2]];
    ++hist[d[3]];
    ++hist[d[4]];
    ++hist[d[5]];
    ++hist[d[6]];
    ++hist[d[7]];
  }
  for (; i < n; ++i) ++hist[(keys[i] >> shift) & mask];
}
#endif  // __AVX2__

#if defined(__SSE2__)
/// Flush one full 64-byte staging line to an aligned destination with
/// non-temporal stores, via the widest store the build + host offer.
inline void stream_line(Key* dst, const Key* src) {
#if defined(__AVX2__)
  if (host_avx2()) {
    auto* const q = reinterpret_cast<__m256i*>(dst);
    const auto* const s = reinterpret_cast<const __m256i*>(src);
    _mm256_stream_si256(q + 0, _mm256_loadu_si256(s + 0));
    _mm256_stream_si256(q + 1, _mm256_loadu_si256(s + 1));
    return;
  }
#endif
  auto* const q = reinterpret_cast<__m128i*>(dst);
  const auto* const s = reinterpret_cast<const __m128i*>(src);
  _mm_stream_si128(q + 0, _mm_loadu_si128(s + 0));
  _mm_stream_si128(q + 1, _mm_loadu_si128(s + 1));
  _mm_stream_si128(q + 2, _mm_loadu_si128(s + 2));
  _mm_stream_si128(q + 3, _mm_loadu_si128(s + 3));
}
#endif  // __SSE2__

/// The seed permute loop, kept verbatim apart from the hoisted digit: the
/// digit is computed once per key and reused for both the scattered write
/// and the run update (the seed recomputed it when per-element assertions
/// were compiled in).
std::uint64_t permute_reference(std::span<const Key> in, std::span<Key> out,
                                int pass, int radix_bits,
                                std::span<std::uint64_t> cursor) {
  std::uint64_t runs = 0;
  std::uint32_t prev_digit = ~0u;
  const std::size_t n = in.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Key k = in[i];
    const std::uint32_t d = radix_digit(k, pass, radix_bits);
    const std::uint64_t pos = cursor[d]++;
    DSM_DCHECK(pos < out.size(), "permutation writes past the output");
    out[pos] = k;
    runs += d != prev_digit ? 1 : 0;
    prev_digit = d;
  }
  return runs;
}

/// Software write-combining permute: stage each bucket's keys in a
/// cache-line buffer and flush it contiguously when full. This is the
/// paper's CC-SAS-NEW restructuring (locally buffer temporally-scattered
/// writes, then move them as blocks) applied to the host cache hierarchy:
/// instead of keeping 2^r partially-written destination lines live at
/// once, the working set is the 64-byte-per-bucket staging area plus one
/// destination line per flush.
std::uint64_t permute_write_combined(std::span<const Key> in,
                                     std::span<Key> out, int pass,
                                     int radix_bits,
                                     std::span<std::uint64_t> cursor,
                                     RadixWorkspace& ws) {
  const std::size_t buckets = std::size_t{1} << radix_bits;
  DSM_CHECK(ws.wc_keys.size() >= buckets * kWcLineKeys &&
                ws.wc_fill.size() >= buckets,
            "write-combining staging not prepared");
  Key* const wc = ws.wc_keys.data();
  std::uint32_t* const fill = ws.wc_fill.data();
  Key* const out_data = out.data();
  std::uint64_t runs = 0;
  std::uint32_t prev_digit = ~0u;
  for (const Key k : in) {
    const std::uint32_t d = radix_digit(k, pass, radix_bits);
    runs += d != prev_digit ? 1 : 0;
    prev_digit = d;
    std::uint32_t f = fill[d];
    wc[d * kWcLineKeys + f] = k;
    if (++f == kWcLineKeys) {
      const std::uint64_t pos = cursor[d];
      DSM_DCHECK(pos + kWcLineKeys <= out.size(),
                 "permutation writes past the output");
      std::memcpy(out_data + pos, wc + d * kWcLineKeys,
                  kWcLineKeys * sizeof(Key));
      cursor[d] = pos + kWcLineKeys;
      f = 0;
    }
    fill[d] = f;
  }
  // Drain partial lines in bucket order, restoring the all-zero staging
  // invariant for the next call.
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::uint32_t f = fill[b];
    if (f == 0) continue;
    const std::uint64_t pos = cursor[b];
    DSM_DCHECK(pos + f <= out.size(), "permutation writes past the output");
    std::memcpy(out_data + pos, wc + b * kWcLineKeys, f * sizeof(Key));
    cursor[b] = pos + f;
    fill[b] = 0;
  }
  return runs;
}

#if defined(__SSE2__)
/// WC permute variant for DRAM-bound passes: identical staging, but full
/// lines are flushed with non-temporal stores. The destination is
/// write-only until the next pass reads it back, so streaming past the
/// cache saves the read-for-ownership of every destination line (a third
/// of the pass's memory traffic). Each bucket's first flush is shortened
/// to the next 64-byte destination boundary so every streaming flush
/// covers exactly one line — an unaligned flush would straddle two lines
/// and the CPU's fill buffers would evict both as costly partial writes.
std::uint64_t permute_wc_stream(std::span<const Key> in, std::span<Key> out,
                                int pass, int radix_bits,
                                std::span<std::uint64_t> cursor,
                                RadixWorkspace& ws) {
  const std::size_t buckets = std::size_t{1} << radix_bits;
  DSM_CHECK(ws.wc_keys.size() >= buckets * kWcLineKeys &&
                ws.wc_fill.size() >= buckets && ws.wc_need.size() >= buckets,
            "write-combining staging not prepared");
  Key* const wc = ws.wc_keys.data();
  std::uint32_t* const fill = ws.wc_fill.data();
  std::uint32_t* const need = ws.wc_need.data();
  Key* const out_data = out.data();
  for (std::size_t b = 0; b < buckets; ++b) {
    const auto addr = reinterpret_cast<std::uintptr_t>(out_data + cursor[b]);
    const std::size_t off = (addr % 64u) / sizeof(Key);
    need[b] =
        static_cast<std::uint32_t>(off == 0 ? kWcLineKeys : kWcLineKeys - off);
  }
  std::uint64_t runs = 0;
  std::uint32_t prev_digit = ~0u;
  for (const Key k : in) {
    const std::uint32_t d = radix_digit(k, pass, radix_bits);
    runs += d != prev_digit ? 1 : 0;
    prev_digit = d;
    std::uint32_t f = fill[d];
    wc[d * kWcLineKeys + f] = k;
    if (++f == need[d]) {
      const std::uint64_t pos = cursor[d];
      DSM_DCHECK(pos + f <= out.size(),
                 "permutation writes past the output");
      Key* const dst = out_data + pos;
      const Key* const src = wc + d * kWcLineKeys;
      if (f == kWcLineKeys) {
        stream_line(dst, src);
      } else {
        // The alignment-phasing flush: ordinary stores, then every later
        // flush of this bucket starts on a line boundary.
        std::memcpy(dst, src, f * sizeof(Key));
        need[d] = kWcLineKeys;
      }
      cursor[d] = pos + f;
      f = 0;
    }
    fill[d] = f;
  }
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::uint32_t f = fill[b];
    if (f == 0) continue;
    const std::uint64_t pos = cursor[b];
    DSM_DCHECK(pos + f <= out.size(), "permutation writes past the output");
    std::memcpy(out_data + pos, wc + b * kWcLineKeys, f * sizeof(Key));
    cursor[b] = pos + f;
    fill[b] = 0;
  }
  // Streaming stores are weakly ordered; fence before the caller's next
  // read or inter-thread hand-off of the destination.
  _mm_sfence();
  return runs;
}
#endif  // __SSE2__

/// Super-digit width for the two-level scatter: sized so each level-2
/// chunk segment is ~64 KiB (measured sweet spot on the host sweep —
/// wider coarse digits win as n grows), clamped so level-1 staging stays
/// within kTwoLevelMaxCoarseBits lines and level 2 keeps at least one
/// fine bit.
int two_level_coarse_bits(std::size_t n, int radix_bits) {
  const std::size_t bytes = n * sizeof(Key);
  const int target =
      std::max(0, static_cast<int>(std::bit_width(bytes >> 16)) - 1);
  const int lo = std::max(1, radix_bits - kTwoLevelMaxCoarseBits);
  const int hi = std::min(kTwoLevelMaxCoarseBits, radix_bits - 1);
  return std::clamp(target, lo, hi);
}

/// Two-level staged scatter for bucket counts whose one-level staging
/// would overflow the cache (radix 16: 4 MiB of line buffers). Level 1
/// groups keys by *super-digit* (the high coarse_bits of the digit) into
/// a chunk buffer via WC staging — few write streams, so staging is tiny
/// and flushes stream. Level 2 scatters each super-bucket's chunk segment
/// to its final position — the fine buckets of one super-bucket span a
/// narrow destination window, so the live line and TLB set stays small.
/// Both levels preserve input order per bucket, so the composition equals
/// the reference's stable scatter byte-for-byte; `runs` is measured on
/// the original order during level 1.
std::uint64_t permute_two_level(std::span<const Key> in, std::span<Key> out,
                                int pass, int radix_bits,
                                std::span<std::uint64_t> cursor,
                                RadixWorkspace& ws) {
  const std::size_t n = in.size();
  const int coarse_bits = two_level_coarse_bits(n, radix_bits);
  const int fine_bits = radix_bits - coarse_bits;
  const std::size_t coarse_n = std::size_t{1} << coarse_bits;
  DSM_CHECK(ws.wc_keys.size() >= coarse_n * kWcLineKeys &&
                ws.wc_fill.size() >= coarse_n &&
                ws.wc_need.size() >= coarse_n,
            "two-level staging not prepared");
  if (ws.chunk.size() < n) ws.chunk.resize(n);
  if (ws.coarse.size() < coarse_n) ws.coarse.resize(coarse_n);
  const Key* const kin = in.data();
  // Super-digit counting sweep (coarse_n <= 1024 L1-resident counters),
  // then exclusive prefix into level-1 write cursors over the chunk.
  std::uint64_t* const ccur = ws.coarse.data();
  std::fill(ccur, ccur + coarse_n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ++ccur[radix_digit(kin[i], pass, radix_bits) >> fine_bits];
  }
  std::uint64_t acc = 0;
  for (std::size_t b = 0; b < coarse_n; ++b) {
    const std::uint64_t c = ccur[b];
    ccur[b] = acc;
    acc += c;
  }
  // Level 1: write-combining scatter into the chunk by super-digit.
  Key* const ch = ws.chunk.data();
  Key* const wc = ws.wc_keys.data();
  std::uint32_t* const fill = ws.wc_fill.data();
  std::uint64_t runs = 0;
  std::uint32_t prev_digit = ~0u;
#if defined(__SSE2__)
  std::uint32_t* const need = ws.wc_need.data();
  for (std::size_t b = 0; b < coarse_n; ++b) {
    const auto addr = reinterpret_cast<std::uintptr_t>(ch + ccur[b]);
    const std::size_t off = (addr % 64u) / sizeof(Key);
    need[b] =
        static_cast<std::uint32_t>(off == 0 ? kWcLineKeys : kWcLineKeys - off);
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    const Key k = kin[i];
    const std::uint32_t d = radix_digit(k, pass, radix_bits);
    runs += d != prev_digit ? 1 : 0;
    prev_digit = d;
    const std::uint32_t c = d >> fine_bits;
    std::uint32_t f = fill[c];
    wc[c * kWcLineKeys + f] = k;
    ++f;
#if defined(__SSE2__)
    if (f == need[c]) {
      Key* const dst = ch + ccur[c];
      const Key* const src = wc + c * kWcLineKeys;
      if (f == kWcLineKeys) {
        stream_line(dst, src);
      } else {
        std::memcpy(dst, src, f * sizeof(Key));
        need[c] = kWcLineKeys;
      }
      ccur[c] += f;
      f = 0;
    }
#else
    if (f == kWcLineKeys) {
      std::memcpy(ch + ccur[c], wc + c * kWcLineKeys,
                  kWcLineKeys * sizeof(Key));
      ccur[c] += kWcLineKeys;
      f = 0;
    }
#endif
    fill[c] = f;
  }
  for (std::size_t b = 0; b < coarse_n; ++b) {
    const std::uint32_t f = fill[b];
    if (f == 0) continue;
    std::memcpy(ch + ccur[b], wc + b * kWcLineKeys, f * sizeof(Key));
    ccur[b] += f;
    fill[b] = 0;
  }
#if defined(__SSE2__)
  // Chunk lines were streamed; fence before level 2 reads them back.
  _mm_sfence();
#endif
  // Level 2: in-order fine scatter per super-bucket. After the drain,
  // ccur[b] is the end of segment b, so segment starts chain from 0.
  Key* const out_data = out.data();
  std::uint64_t start = 0;
  for (std::size_t b = 0; b < coarse_n; ++b) {
    const std::uint64_t end = ccur[b];
    for (std::uint64_t i = start; i < end; ++i) {
      const Key k = ch[i];
      const std::uint32_t d = radix_digit(k, pass, radix_bits);
      const std::uint64_t pos = cursor[d]++;
      DSM_DCHECK(pos < out.size(), "permutation writes past the output");
      out_data[pos] = k;
    }
    start = end;
  }
  return runs;
}

/// Serial optimized permute: gate between contiguous copy, one-level WC
/// staging (streamed when DRAM-bound), the two-level scatter, and the
/// reference loop. Every path is stable and cursor-consuming.
std::uint64_t permute_optimized(std::span<const Key> in, std::span<Key> out,
                                int pass, int radix_bits,
                                std::span<std::uint64_t> cursor,
                                std::uint64_t active, RadixWorkspace& ws) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  if (active == 1) {
    // Every key carries the same digit (a dead pass, or a degenerate
    // distribution): the permutation is one contiguous copy.
    const std::uint32_t d = radix_digit(in[0], pass, radix_bits);
    const std::uint64_t pos = cursor[d];
    DSM_DCHECK(pos + n <= out.size(), "permutation writes past the output");
    std::memcpy(out.data() + pos, in.data(), n * sizeof(Key));
    cursor[d] = pos + n;
    return 1;
  }
  const std::size_t buckets = std::size_t{1} << radix_bits;
  const bool dram_bound = n * sizeof(Key) >= kWcMinFootprintBytes;
  // When the whole pass footprint fits inside the staging budget (a
  // proxy for the cache the budget is sized against), the direct
  // scatter's live destination lines are cache-resident and every
  // staging variant is pure overhead (measured 0.75x at 64K x r11).
  const bool cache_resident = n * sizeof(Key) < kernel_staging_bytes();
  if (buckets * kWcLineKeys * sizeof(Key) <= kernel_staging_bytes()) {
    // Staging pays for itself once buckets' write streams overflow the
    // cache AND the average bucket fills at least one line (below that
    // the staging copy and drain are pure overhead on an L1-resident
    // scatter).
    const bool amortized = !cache_resident && n >= buckets * kWcLineKeys;
    if (dram_bound || (buckets >= kernel_wc_min_buckets() && amortized)) {
      ws.prepare(radix_bits, 1);  // ensure staging even for direct callers
#if defined(__SSE2__)
      if (dram_bound) {
        return permute_wc_stream(in, out, pass, radix_bits, cursor, ws);
      }
#endif
      return permute_write_combined(in, out, pass, radix_bits, cursor, ws);
    }
    return permute_reference(in, out, pass, radix_bits, cursor);
  }
  // One-level staging would overflow the cache (large radix). The
  // two-level scatter pays once the footprint is well past the cache
  // (4x the staging budget — the default budget reproduces the 4 MiB
  // DRAM-bound threshold) and the average bucket is dense enough to
  // amortize the extra pass over the chunk; below that the direct
  // scatter's working set still mostly fits in cache and the extra
  // pass measured 0.86x at 256K x r16.
  if (n * sizeof(Key) >= 4 * kernel_staging_bytes() &&
      n >= buckets * kTwoLevelMinKeysPerBucket) {
    ws.prepare(radix_bits, 1);
    return permute_two_level(in, out, pass, radix_bits, cursor, ws);
  }
  return permute_reference(in, out, pass, radix_bits, cursor);
}

/// Threaded optimized permute: shard the key range, histogram each shard,
/// derive per-shard cursors from the stable-order prefix (shard t writes
/// bucket b after all earlier shards' bucket-b keys), then scatter the
/// shards concurrently — each through the full serial gate stack with its
/// own staging workspace. Stability of every serial path plus the prefix
/// split makes the output byte-identical to the serial permute for any
/// shard count; `runs` is stitched from per-shard counts by un-counting
/// shard boundaries that continue the previous shard's last digit.
std::uint64_t permute_threaded(std::span<const Key> in, std::span<Key> out,
                               int pass, int radix_bits,
                               std::span<std::uint64_t> cursor,
                               RadixWorkspace& ws, int shards) {
  const std::size_t n = in.size();
  const std::size_t buckets = std::size_t{1} << radix_bits;
  const auto sc = static_cast<std::size_t>(shards);
  if (ws.shards.size() < sc) ws.shards.resize(sc);
  if (ws.shard_hist.size() < sc * buckets) ws.shard_hist.resize(sc * buckets);
  if (ws.shard_cursor.size() < sc * buckets) {
    ws.shard_cursor.resize(sc * buckets);
  }
  // Phase 1 (parallel): per-shard digit histograms.
  run_shards(shards, [&](int t) {
    const std::size_t b0 = shard_begin(n, shards, t);
    const std::size_t b1 = shard_begin(n, shards, t + 1);
    const std::span<std::uint64_t> h(
        ws.shard_hist.data() + static_cast<std::size_t>(t) * buckets,
        buckets);
    (void)histogram_kernel(KernelBackend::kOptimized,
                           in.subspan(b0, b1 - b0), pass, radix_bits, h);
  });
  // Serial: stable-order per-shard cursors, consuming the caller's.
  for (std::size_t b = 0; b < buckets; ++b) {
    std::uint64_t acc = cursor[b];
    for (std::size_t t = 0; t < sc; ++t) {
      ws.shard_cursor[t * buckets + b] = acc;
      acc += ws.shard_hist[t * buckets + b];
    }
    cursor[b] = acc;
  }
  // Phase 2 (parallel): independent stable scatters.
  std::vector<std::uint64_t> shard_runs(sc, 0);
  run_shards(shards, [&](int t) {
    const std::size_t b0 = shard_begin(n, shards, t);
    const std::size_t b1 = shard_begin(n, shards, t + 1);
    const auto ti = static_cast<std::size_t>(t);
    RadixWorkspace& sw = ws.shards[ti];
    sw.jobs = 1;
    sw.prepare(radix_bits, 1);
    const std::span<std::uint64_t> cur(
        ws.shard_cursor.data() + ti * buckets, buckets);
    const std::span<const std::uint64_t> h(
        ws.shard_hist.data() + ti * buckets, buckets);
    shard_runs[ti] = permute_optimized(in.subspan(b0, b1 - b0), out, pass,
                                       radix_bits, cur, count_active(h), sw);
  });
  // Stitch the measured run counts across shard boundaries.
  std::uint64_t runs = 0;
  std::uint32_t prev_digit = ~0u;
  for (int t = 0; t < shards; ++t) {
    const std::size_t b0 = shard_begin(n, shards, t);
    const std::size_t b1 = shard_begin(n, shards, t + 1);
    const std::uint32_t first = radix_digit(in[b0], pass, radix_bits);
    runs += shard_runs[static_cast<std::size_t>(t)] -
            (first == prev_digit ? 1 : 0);
    prev_digit = radix_digit(in[b1 - 1], pass, radix_bits);
  }
  return runs;
}

}  // namespace

std::uint64_t histogram_kernel(KernelBackend be, std::span<const Key> keys,
                               int pass, int radix_bits,
                               std::span<std::uint64_t> hist) {
  DSM_REQUIRE(hist.size() == std::size_t{1} << radix_bits,
              "histogram span size mismatch");
  std::fill(hist.begin(), hist.end(), 0);
#if defined(__AVX2__)
  if (be == KernelBackend::kOptimized && host_avx2()) {
    histogram_span_avx2(keys.data(), keys.size(), pass * radix_bits,
                        (std::uint32_t{1} << radix_bits) - 1u, hist.data());
    return count_active(hist);
  }
#else
  (void)be;
#endif
  for (const Key k : keys) ++hist[radix_digit(k, pass, radix_bits)];
  return count_active(hist);
}

std::uint64_t histogram_kernel(KernelBackend be, std::span<const Key> keys,
                               int pass, int radix_bits,
                               std::span<std::uint64_t> hist,
                               RadixWorkspace& ws) {
  const int shards = be == KernelBackend::kOptimized
                         ? effective_kernel_shards(ws.jobs, keys.size())
                         : 1;
  if (shards <= 1) {
    return histogram_kernel(be, keys, pass, radix_bits, hist);
  }
  DSM_REQUIRE(hist.size() == std::size_t{1} << radix_bits,
              "histogram span size mismatch");
  const std::size_t buckets = hist.size();
  const std::size_t n = keys.size();
  const auto sc = static_cast<std::size_t>(shards);
  if (ws.shard_hist.size() < sc * buckets) ws.shard_hist.resize(sc * buckets);
  run_shards(shards, [&](int t) {
    const std::size_t b0 = shard_begin(n, shards, t);
    const std::size_t b1 = shard_begin(n, shards, t + 1);
    const std::span<std::uint64_t> h(
        ws.shard_hist.data() + static_cast<std::size_t>(t) * buckets,
        buckets);
    (void)histogram_kernel(be, keys.subspan(b0, b1 - b0), pass, radix_bits,
                           h);
  });
  // Fixed shard-order sum: exactly the serial histogram.
  for (std::size_t b = 0; b < buckets; ++b) {
    std::uint64_t sum = 0;
    for (std::size_t t = 0; t < sc; ++t) {
      sum += ws.shard_hist[t * buckets + b];
    }
    hist[b] = sum;
  }
  return count_active(hist);
}

void multi_histogram_kernel(KernelBackend be, std::span<const Key> keys,
                            int passes, int radix_bits,
                            std::span<std::uint64_t> pass_hist) {
  DSM_REQUIRE(passes >= 1, "need at least one pass");
  const std::size_t buckets = std::size_t{1} << radix_bits;
  DSM_REQUIRE(pass_hist.size() >= static_cast<std::size_t>(passes) * buckets,
              "pass_hist too small");
  if (be == KernelBackend::kReference) {
    for (int p = 0; p < passes; ++p) {
      (void)histogram_kernel(be, keys, p, radix_bits,
                             pass_hist.subspan(
                                 static_cast<std::size_t>(p) * buckets,
                                 buckets));
    }
    return;
  }
  std::fill(pass_hist.begin(),
            pass_hist.begin() +
                static_cast<std::ptrdiff_t>(
                    static_cast<std::size_t>(passes) * buckets),
            0);
  std::uint64_t* const h = pass_hist.data();
  const auto mask = (std::uint32_t{1} << radix_bits) - 1u;
  switch (passes) {
    case 2:
      for (const Key k : keys) {
        ++h[k & mask];
        ++h[buckets + ((k >> radix_bits) & mask)];
      }
      return;
    case 3:
      for (const Key k : keys) {
        ++h[k & mask];
        ++h[buckets + ((k >> radix_bits) & mask)];
        ++h[2 * buckets + ((k >> (2 * radix_bits)) & mask)];
      }
      return;
    case 4:
      for (const Key k : keys) {
        ++h[k & mask];
        ++h[buckets + ((k >> radix_bits) & mask)];
        ++h[2 * buckets + ((k >> (2 * radix_bits)) & mask)];
        ++h[3 * buckets + ((k >> (3 * radix_bits)) & mask)];
      }
      return;
    default:
      for (const Key k : keys) {
        std::uint32_t v = k;
        for (int p = 0; p < passes; ++p) {
          ++h[static_cast<std::size_t>(p) * buckets + (v & mask)];
          v >>= radix_bits;
        }
      }
      return;
  }
}

void multi_histogram_kernel(KernelBackend be, std::span<const Key> keys,
                            int passes, int radix_bits,
                            std::span<std::uint64_t> pass_hist,
                            RadixWorkspace& ws) {
  const int shards = be == KernelBackend::kOptimized
                         ? effective_kernel_shards(ws.jobs, keys.size())
                         : 1;
  if (shards <= 1) {
    multi_histogram_kernel(be, keys, passes, radix_bits, pass_hist);
    return;
  }
  DSM_REQUIRE(passes >= 1, "need at least one pass");
  const std::size_t buckets = std::size_t{1} << radix_bits;
  const std::size_t rows = static_cast<std::size_t>(passes) * buckets;
  DSM_REQUIRE(pass_hist.size() >= rows, "pass_hist too small");
  const std::size_t n = keys.size();
  const auto sc = static_cast<std::size_t>(shards);
  if (ws.shards.size() < sc) ws.shards.resize(sc);
  run_shards(shards, [&](int t) {
    const std::size_t b0 = shard_begin(n, shards, t);
    const std::size_t b1 = shard_begin(n, shards, t + 1);
    RadixWorkspace& sw = ws.shards[static_cast<std::size_t>(t)];
    sw.jobs = 1;
    if (sw.pass_hist.size() < rows) sw.pass_hist.resize(rows);
    multi_histogram_kernel(be, keys.subspan(b0, b1 - b0), passes, radix_bits,
                           std::span<std::uint64_t>(sw.pass_hist.data(),
                                                    rows));
  });
  // Fixed shard-order sum: exactly the serial table.
  for (std::size_t r = 0; r < rows; ++r) {
    std::uint64_t sum = 0;
    for (std::size_t t = 0; t < sc; ++t) sum += ws.shards[t].pass_hist[r];
    pass_hist[r] = sum;
  }
}

std::uint64_t permute_kernel(KernelBackend be, std::span<const Key> in,
                             std::span<Key> out, int pass, int radix_bits,
                             std::span<std::uint64_t> cursor,
                             std::uint64_t active, RadixWorkspace& ws) {
  const std::size_t buckets = std::size_t{1} << radix_bits;
  DSM_REQUIRE(cursor.size() == buckets, "cursor span size mismatch");
  if (be == KernelBackend::kReference) {
    return permute_reference(in, out, pass, radix_bits, cursor);
  }
  const std::size_t n = in.size();
  if (n == 0) return 0;
  if (active > 1) {
    const int shards = effective_kernel_shards(ws.jobs, n);
    if (shards > 1) {
      return permute_threaded(in, out, pass, radix_bits, cursor, ws, shards);
    }
  }
  return permute_optimized(in, out, pass, radix_bits, cursor, active, ws);
}

void wc_flush(Key* dst, const Key* src, std::size_t n_keys) {
#if defined(__SSE2__)
  if (n_keys == kWcLineKeys &&
      reinterpret_cast<std::uintptr_t>(dst) % 64u == 0) {
    stream_line(dst, src);
    return;
  }
#endif
  std::memcpy(dst, src, n_keys * sizeof(Key));
}

void wc_store_fence() {
#if defined(__SSE2__)
  _mm_sfence();
#endif
}

void exchange_copy(KernelBackend be, Key* dst, const Key* src,
                   std::size_t n, std::size_t footprint_bytes) {
  if (n == 0) return;
#if defined(__SSE2__)
  if (be == KernelBackend::kOptimized &&
      footprint_bytes >= kWcMinFootprintBytes &&
      n * sizeof(Key) >= kStreamCopyMinBytes) {
    // Peel to the destination's next 64-byte boundary, stream full lines
    // past the cache (the destination is write-only until the next
    // phase), and finish the tail with ordinary stores.
    const auto addr = reinterpret_cast<std::uintptr_t>(dst);
    const std::size_t mis = addr % 64u;
    std::size_t i = 0;
    if (mis != 0) {
      i = (64u - mis) / sizeof(Key);
      std::memcpy(dst, src, i * sizeof(Key));
    }
    for (; i + kWcLineKeys <= n; i += kWcLineKeys) {
      stream_line(dst + i, src + i);
    }
    _mm_sfence();
    if (i < n) std::memcpy(dst + i, src + i, (n - i) * sizeof(Key));
    return;
  }
#else
  (void)be;
  (void)footprint_bytes;
#endif
  std::memcpy(dst, src, n * sizeof(Key));
}

void payload_mirror_scatter(std::span<const Key> keys,
                            std::span<const keys::Payload> pay_in,
                            std::span<keys::Payload> pay_out, int pass,
                            int radix_bits, std::span<std::uint64_t> cursor) {
  DSM_REQUIRE(keys.size() == pay_in.size(), "payload lane size mismatch");
  DSM_REQUIRE(cursor.size() == std::size_t{1} << radix_bits,
              "cursor span size mismatch");
  const std::size_t n = keys.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t d = radix_digit(keys[i], pass, radix_bits);
    const std::uint64_t pos = cursor[d]++;
    DSM_DCHECK(pos < pay_out.size(), "payload scatter past the output");
    pay_out[pos] = pay_in[i];
  }
}

}  // namespace dsm::sort
