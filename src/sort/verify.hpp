// Result verification: every parallel sort must produce a globally sorted
// permutation of its input. Checks are O(n) (multiset checksums +
// sortedness) so they run even at 256M keys; tests additionally use the
// exact O(n log n) multiset comparison on small inputs.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "keys/record.hpp"

namespace dsm::sort {

/// Order-independent multiset fingerprint.
struct Checksum {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;    // wraps mod 2^64
  std::uint64_t xor_ = 0;
  std::uint64_t sum_sq = 0; // wraps mod 2^64

  friend bool operator==(const Checksum&, const Checksum&) = default;
};

Checksum checksum_of(std::span<const Key> keys);
Checksum combine(const Checksum& a, const Checksum& b);

/// True if the concatenation of `runs` (in order) is ascending.
bool runs_sorted(std::span<const std::span<const Key>> runs);

/// Fused verification: checksum(runs) == `input` AND the concatenation is
/// ascending, in a single sweep over the output (the separate
/// checksum_of + runs_sorted passes read every key twice).
bool verify_sorted_runs(const Checksum& input,
                        std::span<const std::span<const Key>> runs);

/// Exact multiset equality (sorts copies; test-only sizes).
bool exact_multiset_equal(std::span<const Key> a, std::span<const Key> b);

/// Order-DEPENDENT fingerprint of the concatenated runs (FNV-1a over the
/// key bytes in output order). The complement of the multiset Checksum:
/// the Checksum proves a worker's result is a permutation of the input it
/// was asked to sort; this hash pins *which* permutation, so the master
/// can tell two honest hedged results agree without shipping the keys
/// back over the wire (DESIGN.md §12).
std::uint64_t run_order_hash(std::span<const std::span<const Key>> runs);

/// Order-independent fingerprint of the (key, payload) pair multiset —
/// each pair mixed through a 64-bit finalizer before the commutative
/// folds, so swapping payloads between equal-position pairs changes it.
std::uint64_t pair_fingerprint(std::span<const Key> keys,
                               std::span<const keys::Payload> payloads);

/// kv32 verification for runs of (key lane, payload lane) pairs:
///   * the key concatenation is ascending,
///   * the pair multiset equals `input_pairs` (pairing survived every
///     permutation — no payload was dropped, duplicated, or re-matched),
///   * within every run of equal keys the payloads ascend — since sorts
///     assign payload = global input index, this is exactly LSD radix
///     stability (and sample sort's deterministic duplicate placement).
/// `require_stable` disables the third check for algorithms that do not
/// promise stability.
bool verify_sorted_runs_paired(
    const Checksum& input_keys, std::uint64_t input_pairs,
    std::span<const std::span<const Key>> key_runs,
    std::span<const std::span<const keys::Payload>> payload_runs,
    bool require_stable);

}  // namespace dsm::sort
