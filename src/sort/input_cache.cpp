#include "sort/input_cache.hpp"

#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace dsm::sort {
namespace {

/// Does the global key stream depend on how the array is partitioned?
bool partition_dependent(keys::Dist d) {
  return d == keys::Dist::kBucket || d == keys::Dist::kStagger ||
         d == keys::Dist::kRemote || d == keys::Dist::kLocal;
}

/// Does generation read radix_bits at all?
bool radix_dependent(keys::Dist d) {
  return d == keys::Dist::kRemote || d == keys::Dist::kLocal;
}

struct CacheKey {
  keys::Dist dist = keys::Dist::kGauss;
  Index n_total = 0;
  std::uint64_t seed = 0;
  int norm_p = 0;      // nprocs, or 1 for partition-independent dists
  int norm_radix = 0;  // radix_bits, or 0 for radix-independent dists

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct Entry {
  CacheKey key;
  std::vector<Key> keys;  // the full global array
  Checksum sum;
  std::uint64_t tick = 0;
};

/// One thread's cache: an LRU list of generated data sets bounded by a
/// byte budget, so long-running heterogeneous traffic (the sort service)
/// cannot grow it without bound.
struct Cache {
  std::vector<Entry> entries;
  std::uint64_t budget = kInputCacheDefaultBudget;
  std::uint64_t bytes = 0;
  std::uint64_t tick = 0;
  InputCacheStats stats;

  void evict_to(std::uint64_t limit) {
    while (bytes > limit && !entries.empty()) {
      std::size_t lru = 0;
      for (std::size_t i = 1; i < entries.size(); ++i) {
        if (entries[i].tick < entries[lru].tick) lru = i;
      }
      bytes -= entries[lru].keys.size() * sizeof(Key);
      entries.erase(entries.begin() +
                    static_cast<std::ptrdiff_t>(lru));
      ++stats.evictions;
    }
  }
};

thread_local Cache tl_cache;

/// Generate rank r's slice parameters — shared by the cached and direct
/// paths so both produce identical bytes.
keys::GenSpec gen_spec_for(Index n_total, int nprocs, int radix_bits,
                           std::uint64_t seed, const sas::HomeMap& homes,
                           int r) {
  keys::GenSpec gs;
  gs.n_total = n_total;
  gs.global_begin = homes.begin_of(r);
  gs.rank = r;
  gs.nprocs = nprocs;
  gs.radix_bits = radix_bits;
  gs.seed = seed;
  return gs;
}

}  // namespace

void input_cache_set_budget(std::uint64_t bytes) {
  tl_cache.budget = bytes;
  tl_cache.evict_to(bytes);
}

std::uint64_t input_cache_budget() { return tl_cache.budget; }

void input_cache_clear() {
  tl_cache.entries.clear();
  tl_cache.bytes = 0;
  tl_cache.stats = InputCacheStats{};
}

InputCacheStats input_cache_stats() {
  InputCacheStats s = tl_cache.stats;
  s.entries = tl_cache.entries.size();
  s.bytes = tl_cache.bytes;
  return s;
}

Checksum generate_partitions_cached(
    keys::Dist dist, Index n_total, int nprocs, int radix_bits,
    std::uint64_t seed, const sas::HomeMap& homes,
    const std::function<std::span<Key>(int)>& part) {
  DSM_REQUIRE(homes.size() == n_total && homes.nprocs() == nprocs,
              "home map must match the requested data set");

  Cache& cache = tl_cache;
  const std::uint64_t entry_bytes = n_total * sizeof(Key);
  if (entry_bytes > cache.budget / 2) {
    // Too big to share the budget with a second data set: generate
    // straight into the partitions (the pre-cache behaviour).
    ++cache.stats.misses;
    Checksum total;
    for (int r = 0; r < nprocs; ++r) {
      std::span<Key> out = part(r);
      DSM_CHECK(out.size() == homes.count_of(r), "partition size mismatch");
      keys::generate(dist,
                     out, gen_spec_for(n_total, nprocs, radix_bits, seed,
                                       homes, r));
      total = combine(total, checksum_of(out));
    }
    return total;
  }

  const CacheKey key{dist, n_total, seed,
                     partition_dependent(dist) ? nprocs : 1,
                     radix_dependent(dist) ? radix_bits : 0};
  Entry* entry = nullptr;
  for (Entry& e : cache.entries) {
    if (e.key == key) entry = &e;
  }
  if (entry == nullptr) {
    // Miss: generate a fresh entry, then evict least-recently-used
    // entries until the budget holds again (the new entry is the most
    // recent, so it survives; it fits by the bypass check above).
    ++cache.stats.misses;
    cache.entries.emplace_back();
    entry = &cache.entries.back();
    entry->key = key;
    entry->keys.resize(n_total);
    cache.bytes += entry_bytes;
    Checksum total;
    for (int r = 0; r < nprocs; ++r) {
      const std::span<Key> slice(entry->keys.data() + homes.begin_of(r),
                                 homes.count_of(r));
      keys::generate(dist, slice,
                     gen_spec_for(n_total, nprocs, radix_bits, seed, homes,
                                  r));
      total = combine(total, checksum_of(slice));
    }
    entry->sum = total;
    entry->tick = ++cache.tick;
    cache.evict_to(cache.budget);
    DSM_CHECK(!cache.entries.empty() &&
                  cache.entries.back().key == key,
              "freshly generated entry must survive eviction");
    entry = &cache.entries.back();
  } else {
    ++cache.stats.hits;
    entry->tick = ++cache.tick;
  }

  // Copy the partitions out. The checksum is a multiset fingerprint, so
  // it is independent of which partitioning generated the entry.
  for (int r = 0; r < nprocs; ++r) {
    std::span<Key> out = part(r);
    DSM_CHECK(out.size() == homes.count_of(r), "partition size mismatch");
    if (out.empty()) continue;
    std::memcpy(out.data(), entry->keys.data() + homes.begin_of(r),
                out.size() * sizeof(Key));
  }
  return entry->sum;
}

}  // namespace dsm::sort
