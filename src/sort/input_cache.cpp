#include "sort/input_cache.hpp"

#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace dsm::sort {
namespace {

/// Does the global key stream depend on how the array is partitioned?
bool partition_dependent(keys::Dist d) {
  return d == keys::Dist::kBucket || d == keys::Dist::kStagger ||
         d == keys::Dist::kRemote || d == keys::Dist::kLocal;
}

/// Does generation read radix_bits at all?
bool radix_dependent(keys::Dist d) {
  return d == keys::Dist::kRemote || d == keys::Dist::kLocal;
}

struct CacheKey {
  keys::Dist dist = keys::Dist::kGauss;
  Index n_total = 0;
  std::uint64_t seed = 0;
  int norm_p = 0;      // nprocs, or 1 for partition-independent dists
  int norm_radix = 0;  // radix_bits, or 0 for radix-independent dists

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

struct Entry {
  CacheKey key;
  std::vector<Key> keys;  // the full global array
  Checksum sum;
  std::uint64_t tick = 0;
  bool valid = false;
};

// Two entries cover the common sweep interleavings (one data set per
// sweep cell, plus the sequential baseline's) without holding more than
// two inputs alive per worker thread.
constexpr std::size_t kEntries = 2;
constexpr std::uint64_t kMaxCachedBytes = std::uint64_t{128} << 20;

thread_local Entry tl_cache[kEntries];
thread_local std::uint64_t tl_tick = 0;

/// Generate rank r's slice parameters — shared by the cached and direct
/// paths so both produce identical bytes.
keys::GenSpec gen_spec_for(Index n_total, int nprocs, int radix_bits,
                           std::uint64_t seed, const sas::HomeMap& homes,
                           int r) {
  keys::GenSpec gs;
  gs.n_total = n_total;
  gs.global_begin = homes.begin_of(r);
  gs.rank = r;
  gs.nprocs = nprocs;
  gs.radix_bits = radix_bits;
  gs.seed = seed;
  return gs;
}

}  // namespace

Checksum generate_partitions_cached(
    keys::Dist dist, Index n_total, int nprocs, int radix_bits,
    std::uint64_t seed, const sas::HomeMap& homes,
    const std::function<std::span<Key>(int)>& part) {
  DSM_REQUIRE(homes.size() == n_total && homes.nprocs() == nprocs,
              "home map must match the requested data set");

  if (n_total * sizeof(Key) > kMaxCachedBytes) {
    // Too big to keep a second copy: generate straight into the
    // partitions (the pre-cache behaviour).
    Checksum total;
    for (int r = 0; r < nprocs; ++r) {
      std::span<Key> out = part(r);
      DSM_CHECK(out.size() == homes.count_of(r), "partition size mismatch");
      keys::generate(dist,
                     out, gen_spec_for(n_total, nprocs, radix_bits, seed,
                                       homes, r));
      total = combine(total, checksum_of(out));
    }
    return total;
  }

  const CacheKey key{dist, n_total, seed,
                     partition_dependent(dist) ? nprocs : 1,
                     radix_dependent(dist) ? radix_bits : 0};
  Entry* entry = nullptr;
  for (Entry& e : tl_cache) {
    if (e.valid && e.key == key) entry = &e;
  }
  if (entry == nullptr) {
    // Miss: evict the least recently used slot and generate into it.
    entry = &tl_cache[0];
    for (Entry& e : tl_cache) {
      if (e.tick < entry->tick) entry = &e;
    }
    entry->valid = false;
    entry->key = key;
    entry->keys.resize(n_total);
    Checksum total;
    for (int r = 0; r < nprocs; ++r) {
      const std::span<Key> slice(entry->keys.data() + homes.begin_of(r),
                                 homes.count_of(r));
      keys::generate(dist, slice,
                     gen_spec_for(n_total, nprocs, radix_bits, seed, homes,
                                  r));
      total = combine(total, checksum_of(slice));
    }
    entry->sum = total;
    entry->valid = true;
  }
  entry->tick = ++tl_tick;

  // Copy the partitions out. The checksum is a multiset fingerprint, so
  // it is independent of which partitioning generated the entry.
  for (int r = 0; r < nprocs; ++r) {
    std::span<Key> out = part(r);
    DSM_CHECK(out.size() == homes.count_of(r), "partition size mismatch");
    if (out.empty()) continue;
    std::memcpy(out.data(), entry->keys.data() + homes.begin_of(r),
                out.size() * sizeof(Key));
  }
  return entry->sum;
}

}  // namespace dsm::sort
