// Parallel sample sort under the three programming models (§3.2).
//
// Five phases: local radix sort -> sample selection -> splitter
// computation -> one contiguous all-to-all redistribution -> local radix
// sort of the received keys. Twice the local sorting work of radix sort,
// but far better-behaved communication (one contiguous block per process
// pair, remote *reads* under CC-SAS).
//
// Splitter computation differs by model exactly as in the paper:
//   CC-SAS  — every group of 32 processes elects a collector that gathers
//             and sorts the group's samples; collectors merge across
//             groups (everyone else waits — cheap fine-grained loads);
//   MPI     — allgather all samples; every process redundantly sorts the
//             full sample set and picks splitters locally;
//   SHMEM   — like MPI with fcollect.
//
// Entry points are collective; final runs land in (*result)[rank], whose
// concatenation by rank is the globally sorted sequence.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "msg/communicator.hpp"
#include "sas/shared_array.hpp"
#include "shmem/shmem.hpp"
#include "sim/proc.hpp"
#include "sort/kernels.hpp"

namespace dsm::sort {

/// Default per-process sample count (the paper's choice).
inline constexpr int kDefaultSampleCount = 128;

/// Which charged local sort the skeleton's two sorting phases run. The
/// sampling/splitter/redistribution phases are identical for all three:
/// Algo::kSample, kMsdRadix and kMergesort share this skeleton and
/// differ only here (plus their predictor cost models).
enum class LocalSort {
  kLsd,    // seq_radix.hpp (Algo::kSample)
  kMsd,    // msd_radix.hpp (Algo::kMsdRadix)
  kMerge,  // merge_sort.hpp (Algo::kMergesort)
};

struct CcSasSampleWorld {
  sas::SharedArray<Key>* keys = nullptr;             // input, sorted in place
  std::vector<std::vector<Key>>* result = nullptr;   // [rank] output run
  /// Optional kv32 payload lanes: `pay` mirrors the shared key array
  /// (size n_total, partitioned by the same HomeMap); `pay_result` mirrors
  /// `result`. Host-side and uncharged — charged times stay bit-identical
  /// to the u32 sort (DESIGN.md §11). Both null for u32.
  std::vector<keys::Payload>* pay = nullptr;
  std::vector<std::vector<keys::Payload>>* pay_result = nullptr;
  // Shared scratch, sized by the driver:
  std::vector<Key>* samples = nullptr;        // sample_count * p
  std::vector<Key>* group_sorted = nullptr;   // sample_count * p
  std::vector<Key>* splitters = nullptr;      // p - 1 (values)
  std::vector<int>* splitter_srcs = nullptr;  // p - 1 (tie-break ranks)
  std::vector<std::uint64_t>* boundaries = nullptr;  // p * (p + 1)
  int radix_bits = 11;
  int sample_count = kDefaultSampleCount;
  int group_size = 32;  // paper: "every set of 32 processes forms a group"
  LocalSort local_sort = LocalSort::kLsd;  // both local sort phases
  /// Host kernel backend for both local sort phases; charged virtual
  /// times are backend-invariant (DESIGN.md §9).
  KernelBackend kernels = default_kernel_backend();
  /// Host threads per rank for the kernel calls (0 = inherit
  /// default_kernel_jobs()). Output and charged times are byte-identical
  /// for every value.
  int kernel_jobs = 0;
};
void sample_ccsas(sim::ProcContext& ctx, CcSasSampleWorld& w);

struct MpiSampleWorld {
  msg::Communicator* comm = nullptr;
  std::vector<std::vector<Key>>* parts = nullptr;   // input, sorted in place
  std::vector<std::vector<Key>>* result = nullptr;  // [rank] output run
  /// Optional kv32 payload lanes mirroring parts/result (see
  /// CcSasSampleWorld). Both null for u32.
  std::vector<std::vector<keys::Payload>>* pay_parts = nullptr;
  std::vector<std::vector<keys::Payload>>* pay_result = nullptr;
  int radix_bits = 11;
  int sample_count = kDefaultSampleCount;
  LocalSort local_sort = LocalSort::kLsd;            // both local sort phases
  KernelBackend kernels = default_kernel_backend();  // see CcSasSampleWorld
  int kernel_jobs = 0;                               // see CcSasSampleWorld
};
void sample_mpi(sim::ProcContext& ctx, MpiSampleWorld& w);

struct ShmemSampleWorld {
  shmem::Shmem* sh = nullptr;
  std::uint64_t off_keys = 0;  // symmetric Key array, capacity part_capacity
  Index part_capacity = 0;
  Index n_total = 0;
  std::vector<std::vector<Key>>* result = nullptr;  // [rank] output run
  /// Optional kv32 payload lanes: pay_parts[pe] mirrors that PE's
  /// symmetric key partition; pay_result mirrors `result` (see
  /// CcSasSampleWorld). Both null for u32.
  std::vector<std::vector<keys::Payload>>* pay_parts = nullptr;
  std::vector<std::vector<keys::Payload>>* pay_result = nullptr;
  int radix_bits = 11;
  int sample_count = kDefaultSampleCount;
  LocalSort local_sort = LocalSort::kLsd;            // both local sort phases
  KernelBackend kernels = default_kernel_backend();  // see CcSasSampleWorld
  int kernel_jobs = 0;                               // see CcSasSampleWorld
};
void sample_shmem(sim::ProcContext& ctx, ShmemSampleWorld& w);

}  // namespace dsm::sort
