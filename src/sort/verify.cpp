#include "sort/verify.hpp"

#include <algorithm>

namespace dsm::sort {

Checksum checksum_of(std::span<const Key> keys) {
  Checksum c;
  c.count = keys.size();
  for (const Key k : keys) {
    const auto v = static_cast<std::uint64_t>(k);
    c.sum += v;
    c.xor_ ^= v * 0x9e3779b97f4a7c15ull;  // spread duplicates across bits
    c.sum_sq += v * v;
  }
  return c;
}

Checksum combine(const Checksum& a, const Checksum& b) {
  return Checksum{a.count + b.count, a.sum + b.sum, a.xor_ ^ b.xor_,
                  a.sum_sq + b.sum_sq};
}

bool runs_sorted(std::span<const std::span<const Key>> runs) {
  bool have_prev = false;
  Key prev = 0;
  for (const auto& run : runs) {
    for (const Key k : run) {
      if (have_prev && k < prev) return false;
      prev = k;
      have_prev = true;
    }
  }
  return true;
}

bool verify_sorted_runs(const Checksum& input,
                        std::span<const std::span<const Key>> runs) {
  Checksum c;
  bool sorted = true;
  Key prev = 0;  // Key is unsigned, so the first compare is never a miss
  for (const auto& run : runs) {
    c.count += run.size();
    for (const Key k : run) {
      const auto v = static_cast<std::uint64_t>(k);
      c.sum += v;
      c.xor_ ^= v * 0x9e3779b97f4a7c15ull;
      c.sum_sq += v * v;
      sorted = sorted && k >= prev;
      prev = k;
    }
  }
  return sorted && c == input;
}

bool exact_multiset_equal(std::span<const Key> a, std::span<const Key> b) {
  if (a.size() != b.size()) return false;
  std::vector<Key> sa(a.begin(), a.end());
  std::vector<Key> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return sa == sb;
}

}  // namespace dsm::sort
