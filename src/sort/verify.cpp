#include "sort/verify.hpp"

#include <algorithm>

namespace dsm::sort {

Checksum checksum_of(std::span<const Key> keys) {
  Checksum c;
  c.count = keys.size();
  for (const Key k : keys) {
    const auto v = static_cast<std::uint64_t>(k);
    c.sum += v;
    c.xor_ ^= v * 0x9e3779b97f4a7c15ull;  // spread duplicates across bits
    c.sum_sq += v * v;
  }
  return c;
}

Checksum combine(const Checksum& a, const Checksum& b) {
  return Checksum{a.count + b.count, a.sum + b.sum, a.xor_ ^ b.xor_,
                  a.sum_sq + b.sum_sq};
}

bool runs_sorted(std::span<const std::span<const Key>> runs) {
  bool have_prev = false;
  Key prev = 0;
  for (const auto& run : runs) {
    for (const Key k : run) {
      if (have_prev && k < prev) return false;
      prev = k;
      have_prev = true;
    }
  }
  return true;
}

bool verify_sorted_runs(const Checksum& input,
                        std::span<const std::span<const Key>> runs) {
  Checksum c;
  bool sorted = true;
  Key prev = 0;  // Key is unsigned, so the first compare is never a miss
  for (const auto& run : runs) {
    c.count += run.size();
    for (const Key k : run) {
      const auto v = static_cast<std::uint64_t>(k);
      c.sum += v;
      c.xor_ ^= v * 0x9e3779b97f4a7c15ull;
      c.sum_sq += v * v;
      sorted = sorted && k >= prev;
      prev = k;
    }
  }
  return sorted && c == input;
}

std::uint64_t run_order_hash(std::span<const std::span<const Key>> runs) {
  // FNV-1a, one 32-bit key per step: position-sensitive by construction.
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& run : runs) {
    for (const Key k : run) {
      h = (h ^ static_cast<std::uint64_t>(k)) * 1099511628211ull;
    }
  }
  return h;
}

bool exact_multiset_equal(std::span<const Key> a, std::span<const Key> b) {
  if (a.size() != b.size()) return false;
  std::vector<Key> sa(a.begin(), a.end());
  std::vector<Key> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  return sa == sb;
}

namespace {

/// SplitMix64 finalizer: mixes the packed pair so the commutative folds
/// below distinguish re-matched pairings, not just value multisets.
std::uint64_t mix_pair(Key k, keys::Payload p) {
  std::uint64_t z =
      (static_cast<std::uint64_t>(k) << 32) | static_cast<std::uint64_t>(p);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t pair_fingerprint(std::span<const Key> keys,
                               std::span<const keys::Payload> payloads) {
  std::uint64_t fp = keys.size() * 0x9e3779b97f4a7c15ull;
  const std::size_t n = keys.size();
  for (std::size_t i = 0; i < n; ++i) {
    fp += mix_pair(keys[i], payloads[i]);  // commutative: order-independent
  }
  return fp;
}

bool verify_sorted_runs_paired(
    const Checksum& input_keys, std::uint64_t input_pairs,
    std::span<const std::span<const Key>> key_runs,
    std::span<const std::span<const keys::Payload>> payload_runs,
    bool require_stable) {
  if (key_runs.size() != payload_runs.size()) return false;
  Checksum c;
  std::uint64_t fp = 0;
  std::uint64_t total = 0;
  bool ok = true;
  Key prev = 0;
  keys::Payload prev_pay = 0;
  bool have_prev = false;
  for (std::size_t r = 0; r < key_runs.size(); ++r) {
    const auto& keys_run = key_runs[r];
    const auto& pay_run = payload_runs[r];
    if (keys_run.size() != pay_run.size()) return false;
    c.count += keys_run.size();
    total += keys_run.size();
    for (std::size_t i = 0; i < keys_run.size(); ++i) {
      const Key k = keys_run[i];
      const keys::Payload p = pay_run[i];
      const auto v = static_cast<std::uint64_t>(k);
      c.sum += v;
      c.xor_ ^= v * 0x9e3779b97f4a7c15ull;
      c.sum_sq += v * v;
      fp += mix_pair(k, p);
      if (have_prev) {
        ok = ok && k >= prev;
        if (require_stable && k == prev) ok = ok && p > prev_pay;
      }
      prev = k;
      prev_pay = p;
      have_prev = true;
    }
  }
  fp += total * 0x9e3779b97f4a7c15ull;
  return ok && c == input_keys && fp == input_pairs;
}

}  // namespace dsm::sort
