#include "sort/msd_radix.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace dsm::sort {
namespace {

using KeyTraits = keys::RecordTraits<Key>;

/// Everything the charged recursion needs from one counting sweep, all
/// pure functions of the key sequence — both backends must produce these
/// bit-identically (the charge-invariance contract, DESIGN.md §9).
struct CountSweep {
  std::array<std::size_t, kMsdBuckets> count;
  std::uint64_t runs = 0;   // maximal equal-digit runs in source order
  bool all_equal = false;   // the whole span is one distinct key
};

/// Charges of one counting sweep over n keys, shared by both backends:
/// per-key BUSY updates, the key sweep, the resident byte counters, and
/// the 256-entry prefix scan that turns counts into bucket starts.
void charge_count_sweep(sim::ProcContext& ctx, std::uint64_t n) {
  const auto& cpu = ctx.params().cpu;
  ctx.busy_cycles(static_cast<double>(n) * cpu.hist_update_cycles);
  ctx.stream(n * sizeof(Key), n * sizeof(Key));  // key sweep
  ctx.stream(kMsdBuckets * sizeof(std::uint64_t),
             kMsdBuckets * sizeof(std::uint64_t));
  ctx.busy_cycles(static_cast<double>(kMsdBuckets) * cpu.scan_cycles);
}

/// Charges of one American-flag permutation. Unlike the LSD scatter
/// (sequential read stream + scattered writes into a toggle pair), the
/// in-place cycle chase performs a dependent random read *and* a random
/// write per placement — 2n accesses — but over a single-array footprint,
/// half of LSD's.
void charge_flag_permute(sim::ProcContext& ctx, std::uint64_t n,
                         std::uint64_t runs, std::uint64_t active) {
  if (n == 0) return;
  const auto& cpu = ctx.params().cpu;
  ctx.busy_cycles(static_cast<double>(n) * cpu.permute_cycles);
  machine::AccessPattern p;
  p.accesses = 2 * n;
  p.elem_bytes = sizeof(Key);
  p.runs = runs;
  p.active_regions = std::max<std::uint64_t>(1, active);
  p.footprint_bytes = n * sizeof(Key);
  ctx.scattered(p);
}

/// Charges of the insertion-sort base case: the placement scan plus the
/// measured shifts, and one sweep through the (cache-resident) span.
void charge_insertion(sim::ProcContext& ctx, std::uint64_t n,
                      std::uint64_t shifts) {
  const auto& cpu = ctx.params().cpu;
  ctx.busy_cycles(static_cast<double>(n + shifts) * cpu.compare_cycles);
  ctx.stream(n * sizeof(Key), n * sizeof(Key));
}

/// Reference counting sweep: the plain loop, kept verbatim in the seed
/// style — one histogram increment, run boundary test, and all-equal
/// test per key.
CountSweep sweep_reference(std::span<const Key> a, int byte_k) {
  CountSweep s{};
  const Key first = a[0];
  auto prev = static_cast<std::size_t>(KeyTraits::kth_byte(a[0], byte_k));
  s.runs = 1;
  s.all_equal = true;
  for (const Key k : a) {
    const auto d = static_cast<std::size_t>(KeyTraits::kth_byte(k, byte_k));
    ++s.count[d];
    if (d != prev) {
      ++s.runs;
      prev = d;
    }
    s.all_equal = s.all_equal && k == first;
  }
  return s;
}

/// Optimized counting sweep: 4-way unrolled with independent subtable
/// accumulators (breaks the store-to-load dependence between equal
/// digits) and branchless run/equality accumulation. Produces exactly the
/// reference's (count, runs, all_equal).
CountSweep sweep_optimized(std::span<const Key> a, int byte_k) {
  CountSweep s{};
  const std::size_t n = a.size();
  const int shift = 8 * byte_k;
  const Key first = a[0];

  // All-equal fast path: duplicate-heavy recursions spend most sweep
  // work on spans holding one distinct key, where the histogram is fully
  // determined — one vectorizable equality scan replaces it. A mixed
  // span exits the scan at the first mismatch, so the wasted work is a
  // few compares. Results are exactly the reference's: the single digit
  // holds every key, one run, all_equal set.
  {
    std::size_t eq = 1;
    for (; eq + 8 <= n; eq += 8) {
      Key diff8 = 0;
      for (std::size_t j = 0; j < 8; ++j) diff8 |= a[eq + j] ^ first;
      if (diff8 != 0) break;
    }
    for (; eq < n && a[eq] == first; ++eq) {
    }
    if (eq == n) {
      s.count[(first >> shift) & 0xffu] = n;
      s.runs = 1;
      s.all_equal = true;
      return s;
    }
  }

  std::array<std::uint32_t, kMsdBuckets> c0{}, c1{}, c2{}, c3{};
  Key diff = 0;
  std::uint64_t boundaries = 0;
  ++c0[(a[0] >> shift) & 0xffu];
  std::size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    const Key k0 = a[i], k1 = a[i + 1], k2 = a[i + 2], k3 = a[i + 3];
    const std::uint32_t p = (a[i - 1] >> shift) & 0xffu;
    const std::uint32_t d0 = (k0 >> shift) & 0xffu;
    const std::uint32_t d1 = (k1 >> shift) & 0xffu;
    const std::uint32_t d2 = (k2 >> shift) & 0xffu;
    const std::uint32_t d3 = (k3 >> shift) & 0xffu;
    ++c0[d0];
    ++c1[d1];
    ++c2[d2];
    ++c3[d3];
    boundaries += static_cast<std::uint64_t>(d0 != p) + (d1 != d0) +
                  (d2 != d1) + (d3 != d2);
    diff |= (k0 ^ first) | (k1 ^ first) | (k2 ^ first) | (k3 ^ first);
  }
  for (; i < n; ++i) {
    const Key k = a[i];
    const std::uint32_t d = (k >> shift) & 0xffu;
    ++c0[d];
    boundaries += static_cast<std::uint64_t>(((a[i - 1] >> shift) & 0xffu) != d);
    diff |= k ^ first;
  }
  for (std::size_t b = 0; b < kMsdBuckets; ++b) {
    s.count[b] = static_cast<std::size_t>(c0[b]) + c1[b] + c2[b] + c3[b];
  }
  s.runs = 1 + boundaries;
  s.all_equal = diff == 0;
  return s;
}

/// The American-flag in-place permutation, shared by both backends (its
/// result and its measured inputs are what the charges price).
void flag_permute(std::span<Key> a, int byte_k,
                  const std::array<std::size_t, kMsdBuckets>& start,
                  const std::array<std::size_t, kMsdBuckets>& count) {
  std::array<std::size_t, kMsdBuckets> head = start;
  for (std::size_t b = 0; b < kMsdBuckets; ++b) {
    const std::size_t end = start[b] + count[b];
    while (head[b] < end) {
      Key v = a[head[b]];
      auto d = static_cast<std::size_t>(KeyTraits::kth_byte(v, byte_k));
      while (d != b) {
        const Key displaced = a[head[d]];
        a[head[d]] = v;
        ++head[d];
        v = displaced;
        d = static_cast<std::size_t>(KeyTraits::kth_byte(v, byte_k));
      }
      a[head[b]] = v;
      ++head[b];
    }
  }
}

/// One recursion node; ctx == nullptr is the uncharged (bench/test) path.
/// Mirrors detail::msd_record_sort_at exactly, so the charged sort and
/// the generic template produce identical outputs.
void msd_sort_node(sim::ProcContext* ctx, KernelBackend be, std::span<Key> a,
                   int byte_k) {
  const std::size_t n = a.size();
  if (n <= 1) return;
  if (n <= kMsdCutoff) {
    const std::uint64_t shifts = msd_insertion_sort<KeyTraits>(a);
    if (ctx != nullptr) charge_insertion(*ctx, n, shifts);
    return;
  }

  const CountSweep s = be == KernelBackend::kReference
                           ? sweep_reference(a, byte_k)
                           : sweep_optimized(a, byte_k);
  if (ctx != nullptr) charge_count_sweep(*ctx, n);
  if (s.all_equal) return;

  std::array<std::size_t, kMsdBuckets> start;
  std::size_t acc = 0;
  std::uint64_t active = 0;
  for (std::size_t b = 0; b < kMsdBuckets; ++b) {
    start[b] = acc;
    acc += s.count[b];
    active += static_cast<std::uint64_t>(s.count[b] != 0);
  }

  if (active > 1) {
    flag_permute(a, byte_k, start, s.count);
    if (ctx != nullptr) charge_flag_permute(*ctx, n, s.runs, active);
  }
  if (byte_k == 0) return;
  for (std::size_t b = 0; b < kMsdBuckets; ++b) {
    if (s.count[b] > 1) {
      msd_sort_node(ctx, be, a.subspan(start[b], s.count[b]), byte_k - 1);
    }
  }
}

}  // namespace

void seq_msd_sort(std::span<Key> keys) {
  seq_msd_sort(keys, default_kernel_backend(), tls_radix_workspace());
}

void seq_msd_sort(std::span<Key> keys, KernelBackend be, RadixWorkspace&) {
  msd_sort_node(nullptr, be, keys, KeyTraits::n_bytes - 1);
}

void local_msd_sort(sim::ProcContext& ctx, std::span<Key> keys) {
  local_msd_sort(ctx, keys, default_kernel_backend(), tls_radix_workspace());
}

void local_msd_sort(sim::ProcContext& ctx, std::span<Key> keys,
                    KernelBackend be, RadixWorkspace&) {
  msd_sort_node(&ctx, be, keys, KeyTraits::n_bytes - 1);
}

void local_msd_sort_paired(sim::ProcContext& ctx, std::span<Key> keys,
                           std::span<keys::Payload> pays) {
  local_msd_sort_paired(ctx, keys, pays, default_kernel_backend(),
                        tls_radix_workspace());
}

void local_msd_sort_paired(sim::ProcContext& ctx, std::span<Key> keys,
                           std::span<keys::Payload> pays, KernelBackend be,
                           RadixWorkspace& ws) {
  DSM_REQUIRE(pays.size() == keys.size(),
              "payload lane must match the key span");
  const std::size_t n = keys.size();
  // Host-side stable pair mirror (uncharged, DESIGN.md §11): the charged
  // in-place sort handles the key lane; the payload arrangement is
  // re-derived with the generic stable LSD pair sort, because the
  // American-flag cycle chase reorders equal keys.
  std::vector<keys::KeyPayload32> recs(n);
  std::vector<keys::KeyPayload32> rtmp(n);
  for (std::size_t i = 0; i < n; ++i) {
    recs[i] = {keys[i], pays[i]};
  }
  local_msd_sort(ctx, keys, be, ws);
  keys::record_lsd_sort<keys::RecordTraits<keys::KeyPayload32>>(recs, rtmp,
                                                                11);
  for (std::size_t i = 0; i < n; ++i) {
    pays[i] = recs[i].payload;
  }
}

}  // namespace dsm::sort
