// Parallel LSD radix sort under the three programming models (§3.1 of the
// paper), plus the restructured CC-SAS-NEW variant (§4.2.1).
//
// All variants share the same algorithm skeleton per pass:
//   1. local histogram of the current r-bit digit;
//   2. global histogram: CC-SAS uses the fine-grained parallel prefix
//      (BucketScan); MPI/SHMEM allgather the local histograms and compute
//      redundantly (the paper's design);
//   3. permutation into the output array (all-to-all personalised
//      communication) — this is where the models differ:
//        CC-SAS      direct temporally-scattered remote writes
//        CC-SAS-NEW  local buffering, then contiguous block copies
//        MPI         local buffering, then one message per contiguous
//                    chunk (or one per destination, the NAS-IS style
//                    ablation)
//        SHMEM       local buffering into a symmetric staging buffer,
//                    then receiver-initiated gets (or puts, ablation)
//
// Entry points are collective: call from every rank inside SimTeam::run.
#pragma once

#include <atomic>
#include <vector>

#include "common/types.hpp"
#include "msg/communicator.hpp"
#include "sas/prefix_tree.hpp"
#include "sas/shared_array.hpp"
#include "shmem/shmem.hpp"
#include "sim/proc.hpp"
#include "sort/kernels.hpp"

namespace dsm::sort {

/// CC-SAS radix sort over two toggling shared arrays. `buffered` selects
/// the CC-SAS-NEW restructuring. After the call the sorted keys are in
/// `*a` if the pass count (see passes_used) is even, else in `*b`.
struct CcSasRadixWorld {
  sas::SharedArray<Key>* a = nullptr;
  sas::SharedArray<Key>* b = nullptr;
  /// Optional kv32 payload lanes mirroring `a`/`b` (size n_total each).
  /// The lanes live on the host outside the simulated machine: every key
  /// movement is replayed on them uncharged, so charged times stay
  /// bit-identical to the u32 sort (DESIGN.md §11). Both null for u32.
  std::vector<keys::Payload>* pay_a = nullptr;
  std::vector<keys::Payload>* pay_b = nullptr;
  sas::BucketScan* scan = nullptr;
  int radix_bits = 8;
  bool buffered = false;  // true => CC-SAS-NEW
  /// §3.1: "the maximum key value determines how many iterations will
  /// actually be needed" — when set, a collective max-reduction bounds the
  /// pass count instead of assuming full-width keys.
  bool detect_max_key = false;
  /// Host kernel backend for the local histogram/permute work. Virtual
  /// times are identical across backends (the charge-invariance
  /// contract); this only changes host speed.
  KernelBackend kernels = default_kernel_backend();
  /// Host threads per rank for the kernel calls (0 = inherit
  /// default_kernel_jobs(); see RadixWorkspace::jobs). Output and charged
  /// times are byte-identical for every value.
  int kernel_jobs = 0;
  std::atomic<int> passes_used{0};  // output (identical on every rank)
};
void radix_ccsas(sim::ProcContext& ctx, CcSasRadixWorld& w);

/// MPI radix sort over per-rank partitions (private address spaces).
/// Sorted keys end up in parts_a (the algorithm copies back if the pass
/// count is odd). `chunk_messages` selects one message per contiguous
/// chunk (the paper's choice) vs one coalesced message per destination
/// with receiver-side reorganisation (NAS IS style).
struct MpiRadixWorld {
  msg::Communicator* comm = nullptr;
  std::vector<std::vector<Key>>* parts_a = nullptr;  // [rank] -> partition
  std::vector<std::vector<Key>>* parts_b = nullptr;
  /// Optional kv32 payload lanes mirroring parts_a/parts_b (see
  /// CcSasRadixWorld). Requires chunk_messages (the coalesced ablation
  /// does not carry payloads). Both null for u32.
  std::vector<std::vector<keys::Payload>>* pay_a = nullptr;
  std::vector<std::vector<keys::Payload>>* pay_b = nullptr;
  int radix_bits = 8;
  bool chunk_messages = true;
  bool detect_max_key = false;      // see CcSasRadixWorld
  KernelBackend kernels = default_kernel_backend();  // see CcSasRadixWorld
  int kernel_jobs = 0;              // see CcSasRadixWorld
  std::atomic<int> passes_used{0};  // output
};
void radix_mpi(sim::ProcContext& ctx, MpiRadixWorld& w);

/// SHMEM radix sort over symmetric partition arrays. `off_a`/`off_b` are
/// symmetric offsets of Key arrays of capacity `part_capacity` each;
/// `off_stage` a staging array of the same capacity. Sorted keys end in
/// the `off_a` array. `use_put` switches the permutation from
/// receiver-initiated gets (the paper's choice: data lands in the
/// destination cache) to sender-initiated puts (ablation: the next pass
/// finds its keys cold).
struct ShmemRadixWorld {
  shmem::Shmem* sh = nullptr;
  std::uint64_t off_a = 0;
  std::uint64_t off_b = 0;
  std::uint64_t off_stage = 0;
  /// Optional kv32 payload lanes mirroring the off_a/off_b/off_stage
  /// symmetric arrays: [pe] -> that PE's partition lane (see
  /// CcSasRadixWorld). Requires the get path (!use_put). All null for u32.
  std::vector<std::vector<keys::Payload>>* pay_a = nullptr;
  std::vector<std::vector<keys::Payload>>* pay_b = nullptr;
  std::vector<std::vector<keys::Payload>>* pay_stage = nullptr;
  Index part_capacity = 0;
  Index n_total = 0;
  int radix_bits = 8;
  bool use_put = false;
  bool detect_max_key = false;      // see CcSasRadixWorld
  KernelBackend kernels = default_kernel_backend();  // see CcSasRadixWorld
  int kernel_jobs = 0;              // see CcSasRadixWorld
  std::atomic<int> passes_used{0};  // output
};
void radix_shmem(sim::ProcContext& ctx, ShmemRadixWorld& w);

}  // namespace dsm::sort
