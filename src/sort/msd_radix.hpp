// MSD in-place byte radix sort — the kxsort shape over RecordTraits.
//
// The comparison point to the LSD sorts in seq_radix.hpp: where LSD
// always runs radix_passes() full histogram+permute sweeps through a
// same-sized scratch buffer, MSD recurses top byte first and only does
// the work the key structure demands:
//
//   * American-flag in-place permutation — cycle-chasing swaps inside the
//     span itself, so no full-size scratch buffer is ever allocated and
//     the permute footprint is half of LSD's toggle pair;
//   * insertion-sort base case below kMsdCutoff keys;
//   * single-bucket passes descend without permuting, and an all-equal
//     span (detected in the counting sweep) terminates the recursion —
//     this is what makes duplicate-heavy inputs cheap: once a bucket
//     holds one distinct value, one counting sweep ends it.
//
// The price on uniform keys: every in-place placement reads the
// displaced element at its destination — a dependent random read per
// store that the LSD scatter does not pay — plus the insertion-sort tail
// over every leaf. The planner's cost model prices both effects, which
// is why MSD wins dup/adversarial cells and loses gauss ones.
//
// Layering matches seq_radix.hpp: a generic uncharged template core
// (msd_record_sort, usable on any RecordTraits instantiation and from
// sanitizer closures that exclude the simulator), plus charged
// local_* entry points in msd_radix.cpp that honor the kernel-backend
// contract: kReference/kOptimized may change how the counting sweep is
// computed, never the sorted output or any charged virtual time
// (DESIGN.md §9). Charged paired variants keep the record-oblivious
// contract (§11) with a host-side stable pair mirror.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/types.hpp"
#include "keys/record.hpp"
#include "sim/proc.hpp"
#include "sort/kernels.hpp"

namespace dsm::sort {

/// Byte buckets of the MSD recursion (kth_byte ranges over 0..255).
inline constexpr std::size_t kMsdBuckets = 256;

/// Spans at or below this size use the insertion-sort base case.
inline constexpr std::size_t kMsdCutoff = 32;

/// Insertion sort (stable) over any RecordTraits instantiation. Returns
/// the number of element shifts performed — a pure function of the input
/// order, charged by the instrumented callers as measured work.
template <typename Traits>
std::uint64_t msd_insertion_sort(std::span<typename Traits::record_type> recs) {
  using R = typename Traits::record_type;
  std::uint64_t shifts = 0;
  for (std::size_t i = 1; i < recs.size(); ++i) {
    R v = recs[i];
    std::size_t j = i;
    while (j > 0 && Traits::compare(v, recs[j - 1])) {
      recs[j] = recs[j - 1];
      --j;
      ++shifts;
    }
    recs[j] = v;
  }
  return shifts;
}

namespace detail {

/// One recursion node: count byte `byte_k`, American-flag permute the
/// span into bucket order, recurse into buckets on byte_k-1. NOT stable
/// (the in-place cycle chase reorders equal elements) — payload-bearing
/// callers mirror stability host-side, see msd_radix.cpp.
template <typename Traits>
void msd_record_sort_at(std::span<typename Traits::record_type> recs,
                        int byte_k) {
  using R = typename Traits::record_type;
  const std::size_t n = recs.size();
  if (n <= kMsdCutoff) {
    msd_insertion_sort<Traits>(recs);
    return;
  }

  std::array<std::size_t, kMsdBuckets> count{};
  const Key first = Traits::key_of(recs[0]);
  bool all_equal = true;
  for (const R& r : recs) {
    ++count[static_cast<std::size_t>(Traits::kth_byte(r, byte_k))];
    all_equal = all_equal && Traits::key_of(r) == first;
  }
  if (all_equal) return;  // one distinct key: nothing left at any depth

  std::array<std::size_t, kMsdBuckets> start;
  std::size_t acc = 0;
  std::size_t active = 0;
  for (std::size_t b = 0; b < kMsdBuckets; ++b) {
    start[b] = acc;
    acc += count[b];
    active += count[b] != 0 ? 1 : 0;
  }

  if (active > 1) {
    // American-flag permutation: chase displacement cycles in place.
    std::array<std::size_t, kMsdBuckets> head = start;
    for (std::size_t b = 0; b < kMsdBuckets; ++b) {
      const std::size_t end = start[b] + count[b];
      while (head[b] < end) {
        R v = recs[head[b]];
        auto d = static_cast<std::size_t>(Traits::kth_byte(v, byte_k));
        while (d != b) {
          R displaced = recs[head[d]];
          recs[head[d]] = v;
          ++head[d];
          v = displaced;
          d = static_cast<std::size_t>(Traits::kth_byte(v, byte_k));
        }
        recs[head[b]] = v;
        ++head[b];
      }
    }
  }
  if (byte_k == 0) return;
  for (std::size_t b = 0; b < kMsdBuckets; ++b) {
    if (count[b] > 1) {
      msd_record_sort_at<Traits>(recs.subspan(start[b], count[b]), byte_k - 1);
    }
  }
}

}  // namespace detail

/// Generic in-place MSD radix sort: ascending by Traits::key_of, no
/// scratch allocation, not stable. The semantic core the charged entry
/// points and the sanitizer tiers share.
template <typename Traits>
void msd_record_sort(std::span<typename Traits::record_type> recs) {
  if (recs.size() > 1) {
    detail::msd_record_sort_at<Traits>(recs, Traits::n_bytes - 1);
  }
}

/// Uncharged key sort (host-only; bench + tests). The backend changes how
/// the counting sweep is computed (kOptimized unrolls it into subtable
/// accumulators), never the output.
void seq_msd_sort(std::span<Key> keys);
void seq_msd_sort(std::span<Key> keys, KernelBackend be, RadixWorkspace& ws);

/// Instrumented variant; sorts and charges ctx's clock. Result in `keys`.
/// Charged times are identical for every backend and are a pure function
/// of the key sequence (counting sweeps, measured digit runs, measured
/// insertion shifts).
void local_msd_sort(sim::ProcContext& ctx, std::span<Key> keys);
void local_msd_sort(sim::ProcContext& ctx, std::span<Key> keys,
                    KernelBackend be, RadixWorkspace& ws);

/// Paired (kv32) variant: charges and key lane bit-identical to the
/// unpaired sort; the payload lane is re-derived host-side with a stable
/// pair sort (record_lsd_sort), so equal keys keep their incoming payload
/// order — the same stability contract the LSD paired path provides.
void local_msd_sort_paired(sim::ProcContext& ctx, std::span<Key> keys,
                           std::span<keys::Payload> pays);
void local_msd_sort_paired(sim::ProcContext& ctx, std::span<Key> keys,
                           std::span<keys::Payload> pays, KernelBackend be,
                           RadixWorkspace& ws);

}  // namespace dsm::sort
