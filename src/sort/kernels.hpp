// Host radix kernels: the real data movement the simulator executes.
//
// Every simulated sort performs *actual* histogram and permutation passes
// on the host; at the sizes the figure sweeps use, these loops — not the
// engine — bound host wall-clock time. This layer separates *how the host
// computes* from *what the simulator charges*:
//
//   * `kReference` — the seed loops, kept verbatim: one histogram sweep
//     per pass, a direct scattered-store permute.
//   * `kOptimized` — (a) one-sweep multi-pass histogramming: a single
//     read pass over the keys produces the histograms of every radix
//     pass at once (digit histograms are permutation-invariant, so the
//     initial array determines all of them); (b) a software
//     write-combining permute: per-bucket cache-line buffers flushed
//     contiguously — the paper's CC-SAS-NEW insight (buffer scattered
//     remote writes locally, move them contiguously) applied to the
//     host's own cache hierarchy; (c) dead-pass skipping: a pass whose
//     digits are all equal is an identity permutation and moves no data.
//
// The hard contract (see DESIGN.md §9): backends are *charge-invariant*.
// A kernel may change instruction count, sweep structure, and staging
// buffers; it must not change the sorted output, the per-pass histogram,
// the measured run structure (`runs`, `active`) the cost model consumes,
// or any charged virtual time. The equivalence test tier enforces this
// bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dsm::sort {

enum class KernelBackend {
  kReference,  // seed loops, kept verbatim
  kOptimized,  // one-sweep histograms + WC permute + dead-pass skipping
};

const char* kernel_backend_name(KernelBackend b);
KernelBackend kernel_backend_from_name(const std::string& name);

/// Process-wide default backend: DSMSORT_KERNELS=reference|optimized when
/// set (parsed once), else kOptimized. CLI overrides (--kernels) install
/// theirs via set_default_kernel_backend.
KernelBackend default_kernel_backend();
void set_default_kernel_backend(KernelBackend b);

/// Keys per software write-combining line: 64 bytes of Key — one host
/// cache line staged per bucket, flushed contiguously when full.
inline constexpr std::size_t kWcLineKeys = 64 / sizeof(Key);

/// Bucket count at and above which the optimized permute stages writes in
/// write-combining buffers regardless of input size. Below it the
/// destination write streams fit the L1 comfortably and direct scattered
/// stores win (the WC staging would only add a copy) — unless the moved
/// footprint itself is memory-bound, see kWcMinFootprintBytes.
inline constexpr std::size_t kWcMinBuckets = 512;

/// Staging-area ceiling for the WC permute. Past it the per-bucket line
/// buffers no longer fit the L2 and staging evicts the very lines it is
/// trying to batch (measured: 2^16 buckets = 4 MiB staging loses to the
/// direct scatter), so the optimized permute falls back to direct stores.
inline constexpr std::size_t kWcMaxStagingBytes = std::size_t{1} << 20;

/// Moved-bytes threshold past which the permute is DRAM-bound rather than
/// cache-resident. At or above it the optimized permute (a) engages WC
/// staging even below kWcMinBuckets, and (b) flushes full aligned lines
/// with non-temporal stores where the ISA offers them — the destination
/// is write-only until the next pass, so bypassing the hierarchy saves
/// the read-for-ownership of every destination line.
inline constexpr std::size_t kWcMinFootprintBytes = std::size_t{4} << 20;

/// Reusable per-caller scratch for the radix kernels. Hoists every
/// allocation the seed kernels made per call (the per-pass `hist`
/// vector) plus the optimized backend's staging: prepare() is cheap when
/// capacities already fit, so a long-lived caller (the service executor,
/// a sweep worker) allocates once and sorts many times.
struct RadixWorkspace {
  /// Size `hist` for 2^radix_bits buckets (contents unspecified).
  void prepare(int radix_bits);
  /// Additionally size the one-sweep table (`pass_hist`, passes rows of
  /// 2^radix_bits buckets) and the WC staging buffers.
  void prepare(int radix_bits, int passes);

  std::vector<std::uint64_t> hist;       // 2^radix_bits running cursors
  std::vector<std::uint64_t> pass_hist;  // [pass][bucket], one-sweep rows
  std::vector<Key> wc_keys;              // 2^radix_bits x kWcLineKeys
  std::vector<std::uint32_t> wc_fill;    // staged keys per bucket (all 0
                                         // between permute calls)
  std::vector<std::uint32_t> wc_need;    // keys until next flush (aligns
                                         // streaming flushes to 64B)
};

/// The calling host thread's lazily-created workspace. The legacy
/// (workspace-free) sort entry points borrow this; it is safe under the
/// cooperative fiber engine too because no kernel yields mid-call (the
/// borrow never spans a reconcile point).
RadixWorkspace& tls_radix_workspace();

/// Number of nonzero buckets.
std::uint64_t count_active(std::span<const std::uint64_t> hist);

/// One counting pass over `keys` for digit `pass`: fills `hist` (size
/// 2^radix_bits) and returns the number of nonzero buckets. Identical
/// loop under both backends (a single-pass count is already memory
/// bound); the optimized backend's histogram win is multi_histogram.
std::uint64_t histogram_kernel(KernelBackend be, std::span<const Key> keys,
                               int pass, int radix_bits,
                               std::span<std::uint64_t> hist);

/// Histograms of every pass at once: fills `pass_hist` (row-major,
/// `passes` rows of 2^radix_bits). kReference performs `passes`
/// independent key sweeps (the seed structure); kOptimized reads the
/// keys once and updates all rows per key.
void multi_histogram_kernel(KernelBackend be, std::span<const Key> keys,
                            int passes, int radix_bits,
                            std::span<std::uint64_t> pass_hist);

/// Stable permutation of `in` into `out` by digit `pass`, using `cursor`
/// (size 2^radix_bits) as running write cursors (consumed: advanced past
/// every written key). Returns the measured digit-run count — the charge
/// input the cost model consumes — which is a pure function of the input
/// order and therefore backend-invariant. `active` is the nonzero bucket
/// count of this span's digit histogram (enables the single-bucket
/// contiguous-copy fast path; pass count_active's result).
std::uint64_t permute_kernel(KernelBackend be, std::span<const Key> in,
                             std::span<Key> out, int pass, int radix_bits,
                             std::span<std::uint64_t> cursor,
                             std::uint64_t active, RadixWorkspace& ws);

}  // namespace dsm::sort
