// Host radix kernels: the real data movement the simulator executes.
//
// Every simulated sort performs *actual* histogram and permutation passes
// on the host; at the sizes the figure sweeps use, these loops — not the
// engine — bound host wall-clock time. This layer separates *how the host
// computes* from *what the simulator charges*:
//
//   * `kReference` — the seed loops, kept verbatim: one histogram sweep
//     per pass, a direct scattered-store permute.
//   * `kOptimized` — (a) one-sweep multi-pass histogramming: a single
//     read pass over the keys produces the histograms of every radix
//     pass at once (digit histograms are permutation-invariant, so the
//     initial array determines all of them); (b) a software
//     write-combining permute: per-bucket cache-line buffers flushed
//     contiguously — the paper's CC-SAS-NEW insight (buffer scattered
//     remote writes locally, move them contiguously) applied to the
//     host's own cache hierarchy; (c) a two-level staged scatter for
//     bucket counts whose staging would overflow the cache (radix 16):
//     keys are first grouped by super-digit into a chunk buffer, then
//     each super-bucket is scattered to its final position — both levels
//     keep the live write-stream count small; (d) dead-pass skipping: a
//     pass whose digits are all equal is an identity permutation and
//     moves no data; (e) an optional threaded mode (`jobs`) that shards
//     histogram and permute across host threads inside one charged sort.
//
// The hard contract (see DESIGN.md §9): backends are *charge-invariant*.
// A kernel may change instruction count, sweep structure, staging
// buffers, and host thread count; it must not change the sorted output,
// the per-pass histogram, the measured run structure (`runs`, `active`)
// the cost model consumes, or any charged virtual time. The equivalence
// test tier enforces this bit-for-bit, for every backend and jobs value.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/types.hpp"
#include "keys/record.hpp"

namespace dsm::sort {

enum class KernelBackend {
  kReference,  // seed loops, kept verbatim
  kOptimized,  // one-sweep histograms + staged permutes + dead-pass skip
};

/// Canonical registry table (see common/cli.hpp).
inline constexpr EnumEntry<KernelBackend> kKernelBackendNames[] = {
    {KernelBackend::kReference, "reference"},
    {KernelBackend::kOptimized, "optimized"},
};

const char* kernel_backend_name(KernelBackend b);
KernelBackend kernel_backend_from_name(const std::string& name);
/// Typed parse: kInvalidArgument listing the accepted names on failure.
Result<KernelBackend> try_kernel_backend_from_name(const std::string& name);

/// Process-wide default backend: DSMSORT_KERNELS=reference|optimized when
/// set (parsed once), else kOptimized. CLI overrides (--kernels) install
/// theirs via set_default_kernel_backend.
KernelBackend default_kernel_backend();
void set_default_kernel_backend(KernelBackend b);

/// Keys per software write-combining line: 64 bytes of Key — one host
/// cache line staged per bucket, flushed contiguously when full.
inline constexpr std::size_t kWcLineKeys = 64 / sizeof(Key);

/// Default bucket count at and above which the optimized permute stages
/// writes in write-combining buffers regardless of input size. Below it
/// the destination write streams fit the L1 comfortably and direct
/// scattered stores win (the WC staging would only add a copy) — unless
/// the moved footprint itself is memory-bound, see kWcMinFootprintBytes.
/// Runtime value: kernel_wc_min_buckets() / DSMSORT_KERNEL_WC_BUCKETS.
inline constexpr std::size_t kWcDefaultMinBuckets = 512;

/// Default staging-area ceiling for the one-level WC permute. Past it the
/// per-bucket line buffers no longer fit the L2 and staging evicts the
/// very lines it is trying to batch (measured: 2^16 buckets = 4 MiB
/// staging loses to the direct scatter), so the optimized permute
/// switches to the two-level staged scatter instead. Runtime value:
/// kernel_staging_bytes() / DSMSORT_KERNEL_STAGING_KB.
inline constexpr std::size_t kWcDefaultStagingBytes = std::size_t{1} << 20;

/// Moved-bytes threshold past which the permute is DRAM-bound rather than
/// cache-resident. At or above it the optimized permute (a) engages WC
/// staging even below kernel_wc_min_buckets(), and (b) flushes full
/// aligned lines with non-temporal stores where the ISA offers them — the
/// destination is write-only until the next pass, so bypassing the
/// hierarchy saves the read-for-ownership of every destination line.
inline constexpr std::size_t kWcMinFootprintBytes = std::size_t{4} << 20;

/// The two-level scatter only pays once the average bucket holds this
/// many keys; below it the destination write streams are sparse enough
/// that the direct scatter stays cache-resident.
inline constexpr std::size_t kTwoLevelMinKeysPerBucket = 4;

/// Widest super-digit the two-level scatter's first level uses: 2^10
/// coarse buckets keep level-1 staging at 64 KiB regardless of radix.
inline constexpr int kTwoLevelMaxCoarseBits = 10;

/// Default minimum keys per shard before the threaded kernel mode splits
/// a histogram/permute across host threads (thread spawn and the serial
/// cursor merge must amortize). Runtime value: kernel_shard_min_keys().
inline constexpr std::size_t kDefaultShardMinKeys = std::size_t{1} << 17;

/// Below this many bytes an exchange_copy is always a plain memcpy: the
/// non-temporal path's fence and alignment peeling need a run of full
/// cache lines to pay for themselves.
inline constexpr std::size_t kStreamCopyMinBytes = std::size_t{1} << 12;

/// Tunable one-level WC staging ceiling in bytes. Seeded from
/// DSMSORT_KERNEL_STAGING_KB (strict parse: a bare non-negative integer
/// in KiB; 0 disables one-level staging so large radixes go straight to
/// the two-level scatter), else kWcDefaultStagingBytes.
std::size_t kernel_staging_bytes();
void set_kernel_staging_bytes(std::size_t bytes);

/// Tunable WC amortization gate (minimum bucket count). Seeded from
/// DSMSORT_KERNEL_WC_BUCKETS (strict parse), else kWcDefaultMinBuckets.
std::size_t kernel_wc_min_buckets();
void set_kernel_wc_min_buckets(std::size_t buckets);

/// Tunable threaded-mode shard floor (minimum keys per shard). No env —
/// tests and calibration lower it to exercise sharding at small n.
std::size_t kernel_shard_min_keys();
void set_kernel_shard_min_keys(std::size_t keys);

/// Process-wide default kernel thread count, used by workspaces whose
/// `jobs` is 0. Seeded from DSMSORT_KERNEL_JOBS (strict parse; 0 means
/// one thread per hardware thread, like DSMSORT_JOBS), else 1 (serial).
/// Always returns a resolved value >= 1.
int default_kernel_jobs();
void set_default_kernel_jobs(int jobs);

/// Shard count a kernel call will actually use for `n` keys under the
/// given `jobs` request (0 = inherit default_kernel_jobs()): the jobs
/// cap, then at most one shard per kernel_shard_min_keys() keys.
int effective_kernel_shards(int jobs, std::size_t n);

/// Strict full-string parse behind the DSMSORT_KERNEL_* variables,
/// exported so tests can exercise the error paths without setenv: accepts
/// exactly an optional sign plus base-10 digits within
/// [min_value, max_value]; anything else (leading whitespace, trailing
/// garbage, overflow, out of range) throws Error quoting `text` and
/// describing the accepted values as `what`.
long long parse_kernel_env_number(const char* name, const char* text,
                                  long long min_value, long long max_value,
                                  const char* what);

/// Widest permute-flush ISA this build + host combination dispatches to:
/// "avx2", "sse2", or "scalar". AVX2 variants exist only in the
/// DSMSORT_NATIVE kernel TU and are gated on a runtime CPU check.
const char* kernel_isa_name();

/// Reusable per-caller scratch for the radix kernels. Hoists every
/// allocation the seed kernels made per call (the per-pass `hist`
/// vector) plus the optimized backend's staging: prepare() is cheap when
/// capacities already fit, so a long-lived caller (the service executor,
/// a sweep worker) allocates once and sorts many times.
struct RadixWorkspace {
  /// Size `hist` for 2^radix_bits buckets (contents unspecified).
  void prepare(int radix_bits);
  /// Additionally size the one-sweep table (`pass_hist`, passes rows of
  /// 2^radix_bits buckets) and the WC staging buffers.
  void prepare(int radix_bits, int passes);

  /// Kernel thread budget for calls made through this workspace:
  /// 0 = inherit default_kernel_jobs(), 1 = serial, N = up to N host
  /// threads. Output is byte-identical for every value (enforced by the
  /// equivalence tiers); only host wall-clock changes.
  int jobs = 0;

  std::vector<std::uint64_t> hist;       // 2^radix_bits running cursors
  std::vector<std::uint64_t> pass_hist;  // [pass][bucket], one-sweep rows
  std::vector<Key> wc_keys;              // staging lines x kWcLineKeys
  std::vector<std::uint32_t> wc_fill;    // staged keys per bucket (all 0
                                         // between permute calls)
  std::vector<std::uint32_t> wc_need;    // keys until next flush (aligns
                                         // streaming flushes to 64B)
  std::vector<Key> chunk;                // two-level: super-digit groups
  std::vector<std::uint64_t> coarse;     // two-level: super-digit cursors
  std::vector<RadixWorkspace> shards;    // threaded: per-shard staging
  std::vector<std::uint64_t> shard_hist;    // threaded: [shard][bucket]
  std::vector<std::uint64_t> shard_cursor;  // threaded: [shard][bucket]
  std::vector<std::uint64_t> pay_cursor;    // paired sorts: cursor snapshot
                                            // for the payload mirror
  std::vector<Key> lis_tails;               // merge split: patience tails
  std::vector<std::uint32_t> lis_tail_at;   // merge split: input index of
                                            // each tail
  std::vector<std::uint32_t> lis_prev;      // merge split: chain links
};

/// The calling host thread's lazily-created workspace. The legacy
/// (workspace-free) sort entry points borrow this; it is safe under the
/// cooperative fiber engine too because no kernel yields mid-call (the
/// borrow never spans a reconcile point).
RadixWorkspace& tls_radix_workspace();

/// Number of nonzero buckets.
std::uint64_t count_active(std::span<const std::uint64_t> hist);

/// One counting pass over `keys` for digit `pass`: fills `hist` (size
/// 2^radix_bits) and returns the number of nonzero buckets. The scalar
/// loop is identical under both backends (a single-pass count is already
/// memory bound); the optimized backend may use the vectorized digit
/// extraction where the build carries it.
std::uint64_t histogram_kernel(KernelBackend be, std::span<const Key> keys,
                               int pass, int radix_bits,
                               std::span<std::uint64_t> hist);

/// Workspace-aware overload: under the optimized backend this may shard
/// the count across `ws.jobs` host threads (per-shard counts summed in
/// fixed shard order — the result is exactly the serial histogram).
std::uint64_t histogram_kernel(KernelBackend be, std::span<const Key> keys,
                               int pass, int radix_bits,
                               std::span<std::uint64_t> hist,
                               RadixWorkspace& ws);

/// Histograms of every pass at once: fills `pass_hist` (row-major,
/// `passes` rows of 2^radix_bits). kReference performs `passes`
/// independent key sweeps (the seed structure); kOptimized reads the
/// keys once and updates all rows per key.
void multi_histogram_kernel(KernelBackend be, std::span<const Key> keys,
                            int passes, int radix_bits,
                            std::span<std::uint64_t> pass_hist);

/// Workspace-aware overload: the optimized backend may shard the sweep
/// across `ws.jobs` host threads; per-shard tables are summed in fixed
/// shard order so the result is exactly the serial table.
void multi_histogram_kernel(KernelBackend be, std::span<const Key> keys,
                            int passes, int radix_bits,
                            std::span<std::uint64_t> pass_hist,
                            RadixWorkspace& ws);

/// Stable permutation of `in` into `out` by digit `pass`, using `cursor`
/// (size 2^radix_bits) as running write cursors (consumed: advanced past
/// every written key). Returns the measured digit-run count — the charge
/// input the cost model consumes — which is a pure function of the input
/// order and therefore backend-invariant. `active` is the nonzero bucket
/// count of this span's digit histogram (enables the single-bucket
/// contiguous-copy fast path; pass count_active's result). Under the
/// optimized backend `ws.jobs > 1` shards the permute across host
/// threads; stability of every path makes the output byte-identical for
/// any shard count.
std::uint64_t permute_kernel(KernelBackend be, std::span<const Key> in,
                             std::span<Key> out, int pass, int radix_bits,
                             std::span<std::uint64_t> cursor,
                             std::uint64_t active, RadixWorkspace& ws);

/// Flush one staged write-combining group (`n_keys` <= kWcLineKeys) to
/// `dst`. A full-line flush to a 64-byte-aligned destination uses
/// non-temporal stores where the build carries them; anything else is an
/// ordinary contiguous copy. For callers that run their own staging state
/// machine around a charge-measurement loop (the CC-SAS scatter); pair
/// with wc_store_fence() after the final drain.
void wc_flush(Key* dst, const Key* src, std::size_t n_keys);

/// Order preceding non-temporal flushes before later loads or an
/// inter-thread hand-off of the flushed destination. No-op on builds
/// without streaming stores.
void wc_store_fence();

/// Contiguous key copy for between-pass exchanges (worker piece moves,
/// sample sort's redistribution). kReference is std::memcpy; kOptimized
/// streams full destination lines with non-temporal stores when the
/// surrounding exchange (`footprint_bytes`, the total bytes the phase
/// moves) is DRAM-bound — the destination is write-only until the next
/// phase, so bypassing the cache saves its read-for-ownership traffic.
/// Byte-identical result under both backends; safe for any alignment;
/// `dst` and `src` must not overlap.
void exchange_copy(KernelBackend be, Key* dst, const Key* src,
                   std::size_t n, std::size_t footprint_bytes);

/// Host-side payload mirror of a digit scatter: replays the exact stable
/// permutation a key permute applied, moving `pay_in` into `pay_out`
/// through `cursor` (consumed, like permute_kernel's). The payload lane is
/// a host mirror outside the simulated machine — it is never charged and
/// has no backend variants; callers snapshot the cursor state *before*
/// the key permute and hand the copy here.
void payload_mirror_scatter(std::span<const Key> keys,
                            std::span<const keys::Payload> pay_in,
                            std::span<keys::Payload> pay_out, int pass,
                            int radix_bits, std::span<std::uint64_t> cursor);

}  // namespace dsm::sort
