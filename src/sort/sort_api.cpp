#include "sort/sort_api.hpp"

#include <algorithm>
#include <exception>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "sas/prefix_tree.hpp"
#include "sas/shared_array.hpp"
#include "shmem/shmem.hpp"
#include "sim/team.hpp"
#include "sort/input_cache.hpp"
#include "sort/radix_parallel.hpp"
#include "sort/sample_parallel.hpp"
#include "sort/seq_radix.hpp"
#include "sort/verify.hpp"

#include <fstream>

namespace dsm::sort {
namespace {

/// Poll cancellation and fire the observation hook at a named site.
/// Throwing here (cancellation, an injected fault) aborts the sort; when
/// the site is a phase mark inside team.run, the team poison machinery
/// unwinds every rank cleanly.
void checkpoint(const SortSpec& spec, const char* site, double virtual_ns) {
  if (spec.hooks.cancel != nullptr && spec.hooks.cancel->cancelled()) {
    throw StatusError(Status::cancelled(
        std::string("sort cancelled at checkpoint '") + site + "'"));
  }
  if (spec.hooks.on_site) spec.hooks.on_site(site, virtual_ns);
}

/// Arm tracing and the per-phase hook on a freshly built team. The hook
/// fires on rank 0's phase marks only: one deterministic stream of sites
/// regardless of engine or host schedule.
void arm_team(const SortSpec& spec, sim::SimTeam& team) {
  if (!spec.trace_json_path.empty()) team.enable_tracing();
  if (spec.hooks.on_site || spec.hooks.cancel != nullptr) {
    team.set_phase_hook(
        [&spec](int rank, const char* name, double virtual_ns) {
          if (rank == 0) checkpoint(spec, name, virtual_ns);
        });
  }
}

/// Generate every rank's partition (host-side, uncharged — the paper times
/// sorting, not initialisation) and return the input multiset checksum.
Checksum generate_partitions(const SortSpec& spec,
                             const sas::HomeMap& homes,
                             const std::function<std::span<Key>(int)>& part) {
  checkpoint(spec, "keygen", 0.0);
  return generate_partitions_cached(spec.dist, spec.n, spec.nprocs,
                                    spec.radix_bits, spec.seed, homes, part);
}

SpmdEngine engine_of(const SortSpec& spec) {
  return spec.engine.value_or(default_spmd_engine());
}

bool verify_runs(const Checksum& input,
                 const std::vector<std::span<const Key>>& runs) {
  return verify_sorted_runs(input,
                            std::span<const std::span<const Key>>(runs));
}

using PayloadRuns = std::vector<std::span<const keys::Payload>>;

bool paired_records(const SortSpec& spec) {
  return keys::record_info(spec.record).has_payload;
}

/// Fill a payload partition lane with the records' global input indices —
/// the canonical kv32 payload: after the sort, ascending payloads within
/// every equal-key run prove stability (DESIGN.md §11).
void iota_payload(std::span<keys::Payload> pay, Index global_begin) {
  for (std::size_t i = 0; i < pay.size(); ++i) {
    pay[i] = static_cast<keys::Payload>(global_begin + static_cast<Index>(i));
  }
}

void perf_write_trace(const std::string& path, const sim::SimTeam& team) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw StatusError(Status::io_error("cannot open trace file: " + path));
  }
  out << team.trace_json();
}

void maybe_write_trace(const SortSpec& spec, const sim::SimTeam& team) {
  if (spec.trace_json_path.empty()) return;
  perf_write_trace(spec.trace_json_path, team);
}

SortResult finish(const SortSpec& spec, sim::SimTeam& team,
                  const Checksum& input,
                  const std::vector<std::span<const Key>>& runs,
                  int passes_used = -1, const PayloadRuns* pay_runs = nullptr,
                  std::uint64_t input_pairs = 0) {
  checkpoint(spec, "verify", team.elapsed_ns());
  SortResult res;
  res.n = spec.n;
  res.record = spec.record;
  res.passes = passes_used >= 0 ? passes_used : radix_passes(spec.radix_bits);
  res.elapsed_ns = team.elapsed_ns();
  res.per_proc.reserve(static_cast<std::size_t>(spec.nprocs));
  for (int r = 0; r < spec.nprocs; ++r) {
    res.per_proc.push_back(team.breakdown_of(r));
  }
  res.phases = team.mean_phase_report();
  res.run_sizes.reserve(runs.size());
  for (const auto& run : runs) res.run_sizes.push_back(run.size());
  if (spec.keep_output) {
    res.output.reserve(spec.n);
    for (const auto& run : runs) {
      res.output.insert(res.output.end(), run.begin(), run.end());
    }
    if (pay_runs != nullptr) {
      res.payload_output.reserve(spec.n);
      for (const auto& run : *pay_runs) {
        res.payload_output.insert(res.payload_output.end(), run.begin(),
                                  run.end());
      }
    }
  }
  if (!spec.verify) {
    res.verified = true;
  } else if (pay_runs != nullptr) {
    // Paired verification: key order, exact (key, payload) multiset
    // preservation, and stability — every algorithm here is stable (LSD
    // radix by construction; the sample-sort skeleton — and the MSD and
    // mergesort backends riding on it — because the splitter tie-break
    // routes equal keys by source rank, partitions ascend by rank, and
    // every local payload mirror is a stable record sort).
    res.verified = verify_sorted_runs_paired(
        input, input_pairs, std::span<const std::span<const Key>>(runs),
        std::span<const std::span<const keys::Payload>>(*pay_runs),
        /*require_stable=*/true);
  } else {
    res.verified = verify_runs(input, runs);
  }
  DSM_CHECK(res.verified, "sort produced an incorrect result");
  res.input_checksum = input;
  res.run_hash = run_order_hash(std::span<const std::span<const Key>>(runs));
  maybe_write_trace(spec, team);
  return res;
}

SortResult run_radix_ccsas(const SortSpec& spec,
                           const machine::MachineParams& mp) {
  sim::SimTeam team(spec.nprocs, mp, engine_of(spec));
  arm_team(spec, team);
  sas::SharedArray<Key> a(spec.n, spec.nprocs), b(spec.n, spec.nprocs);
  sas::BucketScan scan(spec.nprocs, std::size_t{1} << spec.radix_bits);
  const Checksum input = generate_partitions(
      spec, a.homes(), [&](int r) { return a.partition(r); });

  const bool paired = paired_records(spec);
  std::vector<keys::Payload> pay_a(paired ? spec.n : 0);
  std::vector<keys::Payload> pay_b(paired ? spec.n : 0);
  std::uint64_t input_pairs = 0;
  if (paired) {
    iota_payload(pay_a, 0);
    input_pairs = pair_fingerprint(a.all(), pay_a);
  }

  CcSasRadixWorld w;
  w.a = &a;
  w.b = &b;
  if (paired) {
    w.pay_a = &pay_a;
    w.pay_b = &pay_b;
  }
  w.scan = &scan;
  w.radix_bits = spec.radix_bits;
  w.buffered = spec.model == Model::kCcSasNew;
  w.detect_max_key = spec.ablations.detect_max_key;
  w.kernels = spec.kernel_backend;
  w.kernel_jobs = spec.kernel_jobs;
  team.run([&](sim::ProcContext& ctx) { radix_ccsas(ctx, w); });

  const int passes = w.passes_used.load(std::memory_order_relaxed);
  sas::SharedArray<Key>& out = passes % 2 == 0 ? a : b;
  const std::vector<std::span<const Key>> runs{out.all()};
  const PayloadRuns pay_runs{
      std::span<const keys::Payload>(passes % 2 == 0 ? pay_a : pay_b)};
  return finish(spec, team, input, runs, passes, paired ? &pay_runs : nullptr,
                input_pairs);
}

SortResult run_radix_mpi(const SortSpec& spec,
                         const machine::MachineParams& mp) {
  sim::SimTeam team(spec.nprocs, mp, engine_of(spec));
  arm_team(spec, team);
  msg::Communicator comm(team, spec.ablations.mpi_impl);
  const sas::HomeMap homes(spec.n, spec.nprocs);
  std::vector<std::vector<Key>> parts_a(static_cast<std::size_t>(spec.nprocs));
  std::vector<std::vector<Key>> parts_b(static_cast<std::size_t>(spec.nprocs));
  for (int r = 0; r < spec.nprocs; ++r) {
    parts_a[static_cast<std::size_t>(r)].resize(homes.count_of(r));
    parts_b[static_cast<std::size_t>(r)].resize(homes.count_of(r));
  }
  const Checksum input = generate_partitions(spec, homes, [&](int r) {
    return std::span<Key>(parts_a[static_cast<std::size_t>(r)]);
  });

  const bool paired = paired_records(spec);
  std::vector<std::vector<keys::Payload>> pay_a, pay_b;
  std::uint64_t input_pairs = 0;
  if (paired) {
    pay_a.resize(static_cast<std::size_t>(spec.nprocs));
    pay_b.resize(static_cast<std::size_t>(spec.nprocs));
    for (int r = 0; r < spec.nprocs; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      pay_a[rr].resize(homes.count_of(r));
      pay_b[rr].resize(homes.count_of(r));
      iota_payload(pay_a[rr], homes.begin_of(r));
      input_pairs += pair_fingerprint(parts_a[rr], pay_a[rr]);
    }
  }

  MpiRadixWorld w;
  w.comm = &comm;
  w.parts_a = &parts_a;
  w.parts_b = &parts_b;
  if (paired) {
    w.pay_a = &pay_a;
    w.pay_b = &pay_b;
  }
  w.radix_bits = spec.radix_bits;
  w.chunk_messages = spec.ablations.mpi_chunk_messages;
  w.detect_max_key = spec.ablations.detect_max_key;
  w.kernels = spec.kernel_backend;
  w.kernel_jobs = spec.kernel_jobs;
  team.run([&](sim::ProcContext& ctx) { radix_mpi(ctx, w); });

  std::vector<std::span<const Key>> runs;
  for (const auto& part : parts_a) runs.emplace_back(part);
  PayloadRuns pay_runs;
  for (const auto& lane : pay_a) pay_runs.emplace_back(lane);
  return finish(spec, team, input, runs,
                w.passes_used.load(std::memory_order_relaxed),
                paired ? &pay_runs : nullptr, input_pairs);
}

SortResult run_radix_shmem(const SortSpec& spec,
                           const machine::MachineParams& mp) {
  sim::SimTeam team(spec.nprocs, mp, engine_of(spec));
  arm_team(spec, team);
  const sas::HomeMap homes(spec.n, spec.nprocs);
  const Index cap = homes.count_of(0);  // leading partitions are largest
  const std::uint64_t seg = 3 * (cap * sizeof(Key) + 64) + 4096;
  shmem::SymmetricHeap heap(spec.nprocs, seg);
  shmem::Shmem sh(team, heap);
  ShmemRadixWorld w;
  w.sh = &sh;
  w.off_a = heap.alloc<Key>(cap);
  w.off_b = heap.alloc<Key>(cap);
  w.off_stage = heap.alloc<Key>(cap);
  w.part_capacity = cap;
  w.n_total = spec.n;
  w.radix_bits = spec.radix_bits;
  w.use_put = spec.ablations.shmem_use_put;
  w.detect_max_key = spec.ablations.detect_max_key;
  w.kernels = spec.kernel_backend;
  w.kernel_jobs = spec.kernel_jobs;

  const Checksum input = generate_partitions(spec, homes, [&](int r) {
    return std::span<Key>(heap.at<Key>(r, w.off_a), homes.count_of(r));
  });

  const bool paired = paired_records(spec);
  std::vector<std::vector<keys::Payload>> pay_a, pay_b, pay_stage;
  std::uint64_t input_pairs = 0;
  if (paired) {
    const auto p = static_cast<std::size_t>(spec.nprocs);
    pay_a.resize(p);
    pay_b.resize(p);
    pay_stage.resize(p);
    for (int r = 0; r < spec.nprocs; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      pay_a[rr].resize(homes.count_of(r));
      pay_b[rr].resize(homes.count_of(r));
      pay_stage[rr].resize(homes.count_of(r));
      iota_payload(pay_a[rr], homes.begin_of(r));
      input_pairs += pair_fingerprint(
          std::span<const Key>(heap.at<Key>(r, w.off_a), homes.count_of(r)),
          pay_a[rr]);
    }
    w.pay_a = &pay_a;
    w.pay_b = &pay_b;
    w.pay_stage = &pay_stage;
  }
  team.run([&](sim::ProcContext& ctx) { radix_shmem(ctx, w); });

  std::vector<std::span<const Key>> runs;
  for (int r = 0; r < spec.nprocs; ++r) {
    runs.emplace_back(heap.at<Key>(r, w.off_a), homes.count_of(r));
  }
  PayloadRuns pay_runs;
  for (const auto& lane : pay_a) pay_runs.emplace_back(lane);
  return finish(spec, team, input, runs,
                w.passes_used.load(std::memory_order_relaxed),
                paired ? &pay_runs : nullptr, input_pairs);
}

/// Which charged local sort the sample skeleton runs for this algorithm.
/// kSample keeps the paper's LSD local sorts; kMsdRadix and kMergesort
/// reuse the identical skeleton (sampling, splitters, redistribution)
/// with their own local-sort kernels.
LocalSort local_sort_of(Algo a) {
  switch (a) {
    case Algo::kMsdRadix: return LocalSort::kMsd;
    case Algo::kMergesort: return LocalSort::kMerge;
    case Algo::kRadix:
    case Algo::kSample: break;
  }
  return LocalSort::kLsd;
}

SortResult run_sample_ccsas(const SortSpec& spec,
                            const machine::MachineParams& mp) {
  sim::SimTeam team(spec.nprocs, mp, engine_of(spec));
  arm_team(spec, team);
  sas::SharedArray<Key> keys(spec.n, spec.nprocs);
  const Checksum input = generate_partitions(
      spec, keys.homes(), [&](int r) { return keys.partition(r); });

  const auto p = static_cast<std::size_t>(spec.nprocs);
  const auto s = static_cast<std::size_t>(spec.ablations.sample_count);
  std::vector<std::vector<Key>> result(p);
  const bool paired = paired_records(spec);
  std::vector<keys::Payload> pay(paired ? spec.n : 0);
  std::vector<std::vector<keys::Payload>> pay_result(paired ? p : 0);
  std::uint64_t input_pairs = 0;
  if (paired) {
    iota_payload(pay, 0);
    input_pairs = pair_fingerprint(keys.all(), pay);
  }
  std::vector<Key> samples(s * p), group_sorted(s * p);
  std::vector<Key> splitters(p - 1);
  std::vector<int> splitter_srcs(p - 1);
  std::vector<std::uint64_t> boundaries(p * (p + 1));

  CcSasSampleWorld w;
  w.keys = &keys;
  w.result = &result;
  if (paired) {
    w.pay = &pay;
    w.pay_result = &pay_result;
  }
  w.samples = &samples;
  w.group_sorted = &group_sorted;
  w.splitters = &splitters;
  w.splitter_srcs = &splitter_srcs;
  w.boundaries = &boundaries;
  w.radix_bits = spec.radix_bits;
  w.sample_count = spec.ablations.sample_count;
  w.group_size = spec.ablations.sample_group_size;
  w.local_sort = local_sort_of(spec.algo);
  w.kernels = spec.kernel_backend;
  w.kernel_jobs = spec.kernel_jobs;
  team.run([&](sim::ProcContext& ctx) { sample_ccsas(ctx, w); });

  std::vector<std::span<const Key>> runs;
  for (const auto& run : result) runs.emplace_back(run);
  PayloadRuns pay_runs;
  for (const auto& lane : pay_result) pay_runs.emplace_back(lane);
  return finish(spec, team, input, runs, -1, paired ? &pay_runs : nullptr,
                input_pairs);
}

SortResult run_sample_mpi(const SortSpec& spec,
                          const machine::MachineParams& mp) {
  sim::SimTeam team(spec.nprocs, mp, engine_of(spec));
  arm_team(spec, team);
  msg::Communicator comm(team, spec.ablations.mpi_impl);
  const sas::HomeMap homes(spec.n, spec.nprocs);
  const auto p = static_cast<std::size_t>(spec.nprocs);
  std::vector<std::vector<Key>> parts(p), result(p);
  for (int r = 0; r < spec.nprocs; ++r) {
    parts[static_cast<std::size_t>(r)].resize(homes.count_of(r));
  }
  const Checksum input = generate_partitions(spec, homes, [&](int r) {
    return std::span<Key>(parts[static_cast<std::size_t>(r)]);
  });

  const bool paired = paired_records(spec);
  std::vector<std::vector<keys::Payload>> pay_parts(paired ? p : 0);
  std::vector<std::vector<keys::Payload>> pay_result(paired ? p : 0);
  std::uint64_t input_pairs = 0;
  if (paired) {
    for (int r = 0; r < spec.nprocs; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      pay_parts[rr].resize(homes.count_of(r));
      iota_payload(pay_parts[rr], homes.begin_of(r));
      input_pairs += pair_fingerprint(parts[rr], pay_parts[rr]);
    }
  }

  MpiSampleWorld w;
  w.comm = &comm;
  w.parts = &parts;
  w.result = &result;
  if (paired) {
    w.pay_parts = &pay_parts;
    w.pay_result = &pay_result;
  }
  w.radix_bits = spec.radix_bits;
  w.sample_count = spec.ablations.sample_count;
  w.local_sort = local_sort_of(spec.algo);
  w.kernels = spec.kernel_backend;
  w.kernel_jobs = spec.kernel_jobs;
  team.run([&](sim::ProcContext& ctx) { sample_mpi(ctx, w); });

  std::vector<std::span<const Key>> runs;
  for (const auto& run : result) runs.emplace_back(run);
  PayloadRuns pay_runs;
  for (const auto& lane : pay_result) pay_runs.emplace_back(lane);
  return finish(spec, team, input, runs, -1, paired ? &pay_runs : nullptr,
                input_pairs);
}

SortResult run_sample_shmem(const SortSpec& spec,
                            const machine::MachineParams& mp) {
  sim::SimTeam team(spec.nprocs, mp, engine_of(spec));
  arm_team(spec, team);
  const sas::HomeMap homes(spec.n, spec.nprocs);
  const Index cap = homes.count_of(0);
  const std::uint64_t seg = cap * sizeof(Key) + 4096;
  shmem::SymmetricHeap heap(spec.nprocs, seg);
  shmem::Shmem sh(team, heap);
  const auto p = static_cast<std::size_t>(spec.nprocs);
  std::vector<std::vector<Key>> result(p);

  ShmemSampleWorld w;
  w.sh = &sh;
  w.off_keys = heap.alloc<Key>(cap);
  w.part_capacity = cap;
  w.n_total = spec.n;
  w.result = &result;
  w.radix_bits = spec.radix_bits;
  w.sample_count = spec.ablations.sample_count;
  w.local_sort = local_sort_of(spec.algo);
  w.kernels = spec.kernel_backend;
  w.kernel_jobs = spec.kernel_jobs;

  const Checksum input = generate_partitions(spec, homes, [&](int r) {
    return std::span<Key>(heap.at<Key>(r, w.off_keys), homes.count_of(r));
  });

  const bool paired = paired_records(spec);
  std::vector<std::vector<keys::Payload>> pay_parts(paired ? p : 0);
  std::vector<std::vector<keys::Payload>> pay_result(paired ? p : 0);
  std::uint64_t input_pairs = 0;
  if (paired) {
    for (int r = 0; r < spec.nprocs; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      pay_parts[rr].resize(homes.count_of(r));
      iota_payload(pay_parts[rr], homes.begin_of(r));
      input_pairs += pair_fingerprint(
          std::span<const Key>(heap.at<Key>(r, w.off_keys),
                               homes.count_of(r)),
          pay_parts[rr]);
    }
    w.pay_parts = &pay_parts;
    w.pay_result = &pay_result;
  }
  team.run([&](sim::ProcContext& ctx) { sample_shmem(ctx, w); });

  std::vector<std::span<const Key>> runs;
  for (const auto& run : result) runs.emplace_back(run);
  PayloadRuns pay_runs;
  for (const auto& lane : pay_result) pay_runs.emplace_back(lane);
  return finish(spec, team, input, runs, -1, paired ? &pay_runs : nullptr,
                input_pairs);
}

SortResult run_sort_impl(const SortSpec& spec,
                         const machine::MachineParams& mp) {
  if (spec.algo == Algo::kRadix) {
    switch (spec.model) {
      case Model::kCcSas:
      case Model::kCcSasNew: return run_radix_ccsas(spec, mp);
      case Model::kMpi: return run_radix_mpi(spec, mp);
      case Model::kShmem: return run_radix_shmem(spec, mp);
    }
  } else {
    // kSample, kMsdRadix and kMergesort all run the sample-sort skeleton;
    // run_sample_* pick the local-sort kernel via local_sort_of.
    switch (spec.model) {
      case Model::kCcSas: return run_sample_ccsas(spec, mp);
      case Model::kCcSasNew: break;  // rejected by validate()
      case Model::kMpi: return run_sample_mpi(spec, mp);
      case Model::kShmem: return run_sample_shmem(spec, mp);
    }
  }
  throw Error("unhandled spec");
}

}  // namespace

const char* algo_name(Algo a) { return enum_name<Algo>(kAlgoNames, a); }

const char* model_name(Model m) { return enum_name<Model>(kModelNames, m); }

Algo algo_from_name(const std::string& name) {
  return enum_from_name_or_throw<Algo>(kAlgoNames, name, "algorithm");
}

Model model_from_name(const std::string& name) {
  return enum_from_name_or_throw<Model>(kModelNames, name, "model");
}

Result<Algo> try_algo_from_name(const std::string& name) {
  return enum_from_name<Algo>(kAlgoNames, name, "algorithm");
}

Result<Model> try_model_from_name(const std::string& name) {
  return enum_from_name<Model>(kModelNames, name, "model");
}

machine::MachineParams SortSpec::resolved_machine() const {
  return machine.value_or(machine::MachineParams::origin2000_for_keys(n));
}

Status SortSpec::validate_status() const {
  std::string v;
  const auto violation = [&v](const std::string& msg) {
    if (!v.empty()) v += "; ";
    v += msg;
  };
  if (!(nprocs >= 1 && nprocs <= 1024)) {
    violation("nprocs must be in [1, 1024], got " + std::to_string(nprocs));
  } else if (n < static_cast<Index>(nprocs)) {
    // Only meaningful against a sane nprocs.
    violation("need at least one key per process (n=" + std::to_string(n) +
              ", nprocs=" + std::to_string(nprocs) + ")");
  }
  if (!(radix_bits >= 1 && radix_bits <= 16)) {
    violation("radix bits must be in [1, 16], got " +
              std::to_string(radix_bits));
  }
  if (kernel_jobs < 0) {
    violation("kernel jobs must be >= 0 (0 = default), got " +
              std::to_string(kernel_jobs));
  }
  if (ablations.sample_count < 1) {
    violation("sample count must be >= 1, got " +
              std::to_string(ablations.sample_count));
  }
  if (ablations.sample_group_size < 1) {
    violation("sample group size must be >= 1, got " +
              std::to_string(ablations.sample_group_size));
  }
  if (!algo_supports_model(algo, model)) {
    violation("CC-SAS-NEW is a radix-sort restructuring only");
  }
  if (keys::record_info(record).has_payload) {
    // Payload-carrying records (DESIGN.md §11). The payload is the key's
    // 32-bit global input index, and two message-layer ablations reorganise
    // keys receiver-side in ways the host payload mirror cannot replay.
    if (n > (Index{1} << 32)) {
      violation("record '" + std::string(keys::record_name(record)) +
                "' carries a 32-bit payload index; n must be <= 2^32, got " +
                std::to_string(n));
    }
    if (algo == Algo::kRadix && model == Model::kMpi &&
        !ablations.mpi_chunk_messages) {
      violation("record '" + std::string(keys::record_name(record)) +
                "' is not supported by the coalesced-message MPI radix "
                "ablation (payloads need chunked messages)");
    }
    if (algo == Algo::kRadix && model == Model::kShmem &&
        ablations.shmem_use_put) {
      violation("record '" + std::string(keys::record_name(record)) +
                "' is not supported by the SHMEM put-based radix ablation "
                "(payloads need the get path)");
    }
  }
  try {
    resolved_machine().validate();
  } catch (const Error& e) {
    violation(e.what());
  }
  if (v.empty()) return Status();
  return Status::invalid_argument("invalid SortSpec: " + v);
}

void SortSpec::validate() const {
  Status s = validate_status();
  if (!s.ok()) throw StatusError(std::move(s));
}

Result<SortResult> try_run_sort(const SortSpec& spec) {
  Status valid = spec.validate_status();
  if (!valid.ok()) return valid;
  try {
    return run_sort_impl(spec, spec.resolved_machine());
  } catch (const StatusError& e) {
    return e.status();
  } catch (const std::exception& e) {
    return Status::internal(e.what());
  }
}

SortResult run_sort(const SortSpec& spec) {
  Result<SortResult> r = try_run_sort(spec);
  if (!r.ok()) throw StatusError(r.status());
  return std::move(r).value();
}

double seq_baseline_ns(Index n, keys::Dist dist, int radix_bits,
                       const machine::MachineParams& machine,
                       std::uint64_t seed) {
  sim::SimTeam team(1, machine);
  std::vector<Key> keys(n), tmp(n);
  const sas::HomeMap homes(n, 1);
  generate_partitions_cached(dist, n, 1, radix_bits, seed, homes,
                             [&](int) { return std::span<Key>(keys); });
  team.run([&](sim::ProcContext& ctx) {
    local_radix_sort(ctx, keys, tmp, radix_bits);
  });
  DSM_CHECK(std::is_sorted(keys.begin(), keys.end()),
            "sequential baseline failed to sort");
  return team.elapsed_ns();
}

double SortResult::imbalance() const {
  if (run_sizes.empty() || n == 0) return 1.0;
  Index mx = 0;
  for (const Index s : run_sizes) mx = std::max(mx, s);
  const double mean =
      static_cast<double>(n) / static_cast<double>(run_sizes.size());
  return static_cast<double>(mx) / mean;
}

double speedup(double baseline_ns, double parallel_ns) {
  DSM_REQUIRE(parallel_ns > 0, "parallel time must be positive");
  return baseline_ns / parallel_ns;
}

}  // namespace dsm::sort
