#include "sort/sample_parallel.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "sas/prefix_tree.hpp"
#include "sort/merge_sort.hpp"
#include "sort/msd_radix.hpp"
#include "sort/seq_radix.hpp"

namespace dsm::sort {
namespace {

/// Local-sort dispatch for the skeleton's two sorting phases: the only
/// point where Algo::kSample / kMsdRadix / kMergesort differ. Every
/// backend honors the same contracts (sorted result in `keys`, charges a
/// pure function of the key sequence), so the surrounding phases are
/// untouched.
void charged_local_sort(sim::ProcContext& ctx, LocalSort alg,
                        std::span<Key> keys, std::span<Key> tmp,
                        int radix_bits, KernelBackend be, RadixWorkspace& ws) {
  switch (alg) {
    case LocalSort::kLsd:
      local_radix_sort(ctx, keys, tmp, radix_bits, be, ws);
      return;
    case LocalSort::kMsd:
      local_msd_sort(ctx, keys, be, ws);
      return;
    case LocalSort::kMerge:
      local_merge_sort(ctx, keys, tmp, radix_bits, be, ws);
      return;
  }
  DSM_REQUIRE(false, "unknown local sort");
}

void charged_local_sort_paired(sim::ProcContext& ctx, LocalSort alg,
                               std::span<Key> keys,
                               std::span<keys::Payload> pays,
                               std::span<Key> tmp,
                               std::span<keys::Payload> pay_tmp,
                               int radix_bits, KernelBackend be,
                               RadixWorkspace& ws) {
  switch (alg) {
    case LocalSort::kLsd:
      local_radix_sort_paired(ctx, keys, pays, tmp, pay_tmp, radix_bits, be,
                              ws);
      return;
    case LocalSort::kMsd:
      local_msd_sort_paired(ctx, keys, pays, be, ws);
      return;
    case LocalSort::kMerge:
      local_merge_sort_paired(ctx, keys, pays, tmp, radix_bits, be, ws);
      return;
  }
  DSM_REQUIRE(false, "unknown local sort");
}

/// Evenly select `s` samples from a sorted span (repeats allowed when the
/// span is shorter than s).
void select_samples(sim::ProcContext& ctx, std::span<const Key> sorted,
                    std::span<Key> out) {
  DSM_REQUIRE(!sorted.empty(), "cannot sample an empty partition");
  const std::uint64_t n = sorted.size();
  const std::uint64_t s = out.size();
  for (std::uint64_t i = 0; i < s; ++i) {
    out[i] = sorted[static_cast<std::size_t>((i * n) / s)];
  }
  ctx.busy_cycles(static_cast<double>(s) * ctx.params().cpu.scan_cycles);
  ctx.stream(s * sizeof(Key), s * sizeof(Key));
}

/// Comparison-sort a small array, charging n log n compares.
void charged_small_sort(sim::ProcContext& ctx, std::span<Key> keys) {
  std::sort(keys.begin(), keys.end());
  const auto n = static_cast<double>(keys.size());
  if (keys.size() > 1) {
    ctx.busy_cycles(n * std::log2(n) * ctx.params().cpu.compare_cycles);
  }
  ctx.stream(keys.size() * sizeof(Key), keys.size() * sizeof(Key));
}

/// A splitter carries its value and the rank that contributed the sample
/// — ties on the value are broken by source rank (the regular-sampling
/// duplicate-handling of Li et al. [13]), which keeps duplicate-heavy
/// inputs (the paper's `zero` distribution) load balanced.
struct Splitter {
  Key value = 0;
  int src = 0;
};

/// Sort the gathered sample set (laid out by contributing rank, `s` per
/// rank) as (value, src) tuples and pick every s-th as a splitter.
void pick_splitters(std::span<const Key> samples_by_rank, int sample_count,
                    std::span<Splitter> splitters) {
  const auto p = splitters.size() + 1;
  const auto s = static_cast<std::size_t>(sample_count);
  DSM_REQUIRE(samples_by_rank.size() == p * s, "sample set must hold p blocks");
  std::vector<Splitter> tagged(samples_by_rank.size());
  for (std::size_t i = 0; i < tagged.size(); ++i) {
    tagged[i] = Splitter{samples_by_rank[i], static_cast<int>(i / s)};
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const Splitter& a, const Splitter& b) {
              return std::tie(a.value, a.src) < std::tie(b.value, b.src);
            });
  for (std::size_t k = 1; k < p; ++k) {
    splitters[k - 1] = tagged[k * s];
  }
}

/// Partition boundaries of rank `r`'s sorted run by the splitters, with
/// ties broken by source rank: a key equal to splitter_k stays in the
/// lower destination iff r < splitter_k.src.
/// bounds[0]=0, bounds[p]=n.
void charged_boundaries(sim::ProcContext& ctx, std::span<const Key> sorted,
                        std::span<const Splitter> splitters,
                        std::span<std::uint64_t> bounds) {
  const std::size_t p = splitters.size() + 1;
  const int r = ctx.rank();
  DSM_REQUIRE(bounds.size() == p + 1, "bounds must have p+1 entries");
  bounds[0] = 0;
  bounds[p] = sorted.size();
  for (std::size_t k = 1; k < p; ++k) {
    const Splitter& sp = splitters[k - 1];
    const auto it = r < sp.src
                        ? std::upper_bound(sorted.begin(), sorted.end(),
                                           sp.value)
                        : std::lower_bound(sorted.begin(), sorted.end(),
                                           sp.value);
    bounds[k] = static_cast<std::uint64_t>(it - sorted.begin());
  }
  // Monotonicity can break only on malformed splitter sets; clamp-check.
  for (std::size_t k = 1; k <= p; ++k) {
    DSM_CHECK(bounds[k] >= bounds[k - 1], "boundaries must be monotone");
  }
  if (p > 1 && !sorted.empty()) {
    ctx.busy_cycles(static_cast<double>(p - 1) *
                    std::log2(static_cast<double>(sorted.size())) *
                    ctx.params().cpu.binary_search_cycles);
  }
}

}  // namespace

void sample_ccsas(sim::ProcContext& ctx, CcSasSampleWorld& w) {
  DSM_REQUIRE(w.keys && w.result && w.samples && w.group_sorted &&
                  w.splitters && w.boundaries,
              "CC-SAS sample world is incomplete");
  const int p = ctx.nprocs();
  const int r = ctx.rank();
  const auto rr = static_cast<std::size_t>(r);
  const auto s = static_cast<std::size_t>(w.sample_count);
  DSM_REQUIRE(w.sample_count >= 1, "need at least one sample per process");
  DSM_REQUIRE(w.samples->size() == s * static_cast<std::size_t>(p) &&
                  w.group_sorted->size() == s * static_cast<std::size_t>(p) &&
                  w.splitters->size() == static_cast<std::size_t>(p - 1) &&
                  w.boundaries->size() ==
                      static_cast<std::size_t>(p) *
                          static_cast<std::size_t>(p + 1),
              "shared scratch sized incorrectly");

  const bool paired = w.pay != nullptr;
  DSM_REQUIRE(!paired || (w.pay_result != nullptr &&
                          w.pay->size() == w.keys->size()),
              "payload lanes must mirror the key array and the result");

  // Phase 1: local radix sort of my partition.
  ctx.phase("local sort 1");
  std::span<Key> mine = w.keys->partition(r);
  std::vector<Key> tmp(mine.size());
  RadixWorkspace ws;  // kernel scratch shared by both local sort phases
  ws.jobs = w.kernel_jobs;
  const std::uint64_t my_begin = w.keys->homes().begin_of(r);
  std::span<keys::Payload> my_pay;
  std::vector<keys::Payload> pay_tmp;
  if (paired) {
    my_pay = std::span<keys::Payload>(w.pay->data() + my_begin, mine.size());
    pay_tmp.resize(mine.size());
    charged_local_sort_paired(ctx, w.local_sort, mine, my_pay, tmp, pay_tmp,
                              w.radix_bits, w.kernels, ws);
  } else {
    charged_local_sort(ctx, w.local_sort, mine, tmp, w.radix_bits, w.kernels,
                       ws);
  }

  // Phase 2: publish my samples (my slot of the shared sample array).
  ctx.phase("sampling");
  select_samples(ctx, mine, std::span<Key>(*w.samples).subspan(rr * s, s));
  sas::ccsas_barrier(ctx);

  // Phase 3: group collectors gather/sort, then merge across groups.
  ctx.phase("splitters");
  const int gsize = std::min(w.group_size, p);
  const bool collector = r % gsize == 0;
  if (collector) {
    const int members = std::min(gsize, p - r);
    std::span<Key> slot(
        w.group_sorted->data() + rr * s,
        static_cast<std::size_t>(members) * s);
    std::memcpy(slot.data(), w.samples->data() + rr * s,
                slot.size() * sizeof(Key));
    for (int m = 1; m < members; ++m) {
      // Remote fine-grained reads of each member's sample slot.
      ctx.rmem_ns(ctx.cost().block_transfer_ns(r, r + m, s * sizeof(Key)));
    }
    charged_small_sort(ctx, slot);
  }
  sas::ccsas_barrier(ctx);

  if (collector) {
    // Merge every group's sorted slot (reading remote collectors' slots);
    // the merge cost is charged here, while the splitter values themselves
    // are computed from the rank-ordered sample array so ties keep their
    // contributing rank (duplicate handling).
    for (int g = 0; g * gsize < p; ++g) {
      if (g * gsize != r && g * gsize < p) {
        const int members = std::min(gsize, p - g * gsize);
        ctx.rmem_ns(ctx.cost().block_transfer_ns(
            r, g * gsize, static_cast<std::uint64_t>(members) * s * sizeof(Key)));
      }
    }
    ctx.busy_cycles(static_cast<double>(s * static_cast<std::size_t>(p)) *
                    std::max(1.0, std::log2(static_cast<double>(
                                      ceil_div(static_cast<std::uint64_t>(p),
                                               static_cast<std::uint64_t>(gsize))))) *
                    ctx.params().cpu.compare_cycles);
    if (r == 0) {
      std::vector<Splitter> splitters(static_cast<std::size_t>(p - 1));
      pick_splitters(*w.samples, w.sample_count, splitters);
      for (std::size_t k = 0; k + 1 < static_cast<std::size_t>(p); ++k) {
        (*w.splitters)[k] = splitters[k].value;
        (*w.splitter_srcs)[k] = splitters[k].src;
      }
      ctx.stream(w.splitters->size() * sizeof(Key),
                 w.splitters->size() * sizeof(Key));
    }
  }
  sas::ccsas_barrier(ctx);
  if (r != 0 && p > 1) {
    ctx.rmem_ns(ctx.cost().block_transfer_ns(
        r, 0, w.splitters->size() * (sizeof(Key) + sizeof(int))));
  }
  std::vector<Splitter> splitters(static_cast<std::size_t>(p - 1));
  for (std::size_t k = 0; k + 1 < static_cast<std::size_t>(p); ++k) {
    splitters[k] = Splitter{(*w.splitters)[k], (*w.splitter_srcs)[k]};
  }

  // Phase 4a: publish my partition boundaries.
  ctx.phase("partition");
  std::span<std::uint64_t> my_bounds(
      w.boundaries->data() + rr * static_cast<std::size_t>(p + 1),
      static_cast<std::size_t>(p + 1));
  charged_boundaries(ctx, mine, splitters, my_bounds);
  sas::ccsas_barrier(ctx);

  // Phase 4b: pull my incoming ranges from every process (remote reads).
  ctx.phase("redistribution");
  std::uint64_t total = 0;
  for (int j = 0; j < p; ++j) {
    const std::uint64_t* bj =
        w.boundaries->data() +
        static_cast<std::size_t>(j) * static_cast<std::size_t>(p + 1);
    total += bj[r + 1] - bj[r];
    if (j != r) ctx.rmem_ns(ctx.cost().line_rtt_ns(r, j));  // read bj row
  }
  std::vector<Key>& out = (*w.result)[rr];
  out.resize(total);
  if (paired) (*w.pay_result)[rr].resize(total);
  std::vector<sim::Transfer> reads;
  std::uint64_t pos = 0;
  for (int j = 0; j < p; ++j) {
    const std::uint64_t* bj =
        w.boundaries->data() +
        static_cast<std::size_t>(j) * static_cast<std::size_t>(p + 1);
    const std::uint64_t cnt = bj[r + 1] - bj[r];
    if (cnt == 0) continue;
    const Key* src = w.keys->partition(j).data() + bj[r];
    exchange_copy(w.kernels, out.data() + pos, src, cnt,
                  total * sizeof(Key));
    if (paired) {
      // Receiver-side payload pull: j's partition (and its lane) is
      // final once the boundary-publication barrier has passed.
      std::memcpy((*w.pay_result)[rr].data() + pos,
                  w.pay->data() + w.keys->homes().begin_of(j) + bj[r],
                  cnt * sizeof(keys::Payload));
    }
    if (j == r) {
      ctx.stream(2 * cnt * sizeof(Key), 2 * cnt * sizeof(Key));
    } else {
      reads.push_back(sim::Transfer{j, r, cnt * sizeof(Key)});
    }
    pos += cnt;
  }
  // Hardware remote loads: no software overhead per chunk beyond the
  // first-line latency the wire model already includes.
  ctx.team().get_epoch(ctx, reads, sim::OneSidedConfig{0.0});

  // Phase 5: local sort of the received run.
  ctx.phase("local sort 2");
  tmp.resize(out.size());
  if (paired) {
    pay_tmp.resize(out.size());
    charged_local_sort_paired(ctx, w.local_sort, out, (*w.pay_result)[rr],
                              tmp, pay_tmp, w.radix_bits, w.kernels, ws);
  } else {
    charged_local_sort(ctx, w.local_sort, out, tmp, w.radix_bits, w.kernels,
                       ws);
  }
  ctx.phase("barrier");
  sas::ccsas_barrier(ctx);
}

void sample_mpi(sim::ProcContext& ctx, MpiSampleWorld& w) {
  DSM_REQUIRE(w.comm && w.parts && w.result, "MPI sample world is incomplete");
  const int p = ctx.nprocs();
  const int r = ctx.rank();
  const auto rr = static_cast<std::size_t>(r);
  const auto s = static_cast<std::size_t>(w.sample_count);
  DSM_REQUIRE(w.sample_count >= 1, "need at least one sample per process");

  const bool paired = w.pay_parts != nullptr;
  DSM_REQUIRE(!paired || w.pay_result != nullptr,
              "payload lanes must mirror parts and result");

  // Phase 1: local sort.
  ctx.phase("local sort 1");
  std::vector<Key>& mine = (*w.parts)[rr];
  std::vector<Key> tmp(mine.size());
  RadixWorkspace ws;  // kernel scratch shared by both local sort phases
  ws.jobs = w.kernel_jobs;
  std::vector<keys::Payload> pay_tmp;
  if (paired) {
    pay_tmp.resize(mine.size());
    charged_local_sort_paired(ctx, w.local_sort, mine, (*w.pay_parts)[rr],
                              tmp, pay_tmp, w.radix_bits, w.kernels, ws);
  } else {
    charged_local_sort(ctx, w.local_sort, mine, tmp, w.radix_bits, w.kernels,
                       ws);
  }

  // Phases 2+3: allgather samples; everyone redundantly sorts the full
  // sample set and picks splitters.
  ctx.phase("sampling");
  std::vector<Key> my_samples(s), all_samples(s * static_cast<std::size_t>(p));
  select_samples(ctx, mine, my_samples);
  ctx.phase("splitters");
  w.comm->allgather<Key>(ctx, my_samples, all_samples);
  std::vector<Splitter> splitters(static_cast<std::size_t>(p - 1));
  pick_splitters(all_samples, w.sample_count, splitters);
  charged_small_sort(ctx, all_samples);

  // Phase 4: boundaries, allgathered so everyone can size windows and
  // compute send offsets.
  ctx.phase("partition");
  std::vector<std::uint64_t> my_bounds(static_cast<std::size_t>(p + 1));
  charged_boundaries(ctx, mine, splitters, my_bounds);
  std::vector<std::uint64_t> all_bounds(static_cast<std::size_t>(p) *
                                        static_cast<std::size_t>(p + 1));
  w.comm->allgather<std::uint64_t>(ctx, my_bounds, all_bounds);

  auto cnt_from_to = [&](int src, int dst) {
    const std::uint64_t* bs =
        all_bounds.data() +
        static_cast<std::size_t>(src) * static_cast<std::size_t>(p + 1);
    return bs[dst + 1] - bs[dst];
  };
  std::uint64_t total = 0;
  for (int j = 0; j < p; ++j) total += cnt_from_to(j, r);
  std::vector<Key>& out = (*w.result)[rr];
  out.resize(total);

  // One contiguous message per destination (the sample-sort property the
  // paper highlights).
  ctx.phase("redistribution");
  std::vector<msg::Communicator::Send> sends;
  for (int dst = 0; dst < p; ++dst) {
    const std::uint64_t cnt = cnt_from_to(r, dst);
    if (cnt == 0) continue;
    const Key* src = mine.data() + my_bounds[static_cast<std::size_t>(dst)];
    std::uint64_t dst_off = 0;
    for (int j = 0; j < r; ++j) dst_off += cnt_from_to(j, dst);
    if (dst == r) {
      exchange_copy(w.kernels, out.data() + dst_off, src, cnt,
                    total * sizeof(Key));
      ctx.stream(2 * cnt * sizeof(Key), 2 * cnt * sizeof(Key));
      continue;
    }
    sends.push_back(msg::Communicator::Send{
        dst, dst_off * sizeof(Key), reinterpret_cast<const std::byte*>(src),
        cnt * sizeof(Key)});
  }
  ctx.busy_cycles(static_cast<double>(p) * ctx.params().cpu.scan_cycles);
  w.comm->exchange(ctx, sends, std::as_writable_bytes(std::span<Key>(out)));

  if (paired) {
    // Receiver-side payload pull, after the exchange: every source's
    // sorted lane is final (the all_bounds allgather ordered phase 1
    // before this point) and the receive layout is source-rank ordered.
    (*w.pay_result)[rr].resize(total);
    std::uint64_t pay_pos = 0;
    for (int j = 0; j < p; ++j) {
      const std::uint64_t cnt = cnt_from_to(j, r);
      if (cnt == 0) continue;
      const std::uint64_t* bs =
          all_bounds.data() +
          static_cast<std::size_t>(j) * static_cast<std::size_t>(p + 1);
      std::memcpy((*w.pay_result)[rr].data() + pay_pos,
                  (*w.pay_parts)[static_cast<std::size_t>(j)].data() + bs[r],
                  cnt * sizeof(keys::Payload));
      pay_pos += cnt;
    }
  }

  // Phase 5: local sort of the received run.
  ctx.phase("local sort 2");
  tmp.resize(out.size());
  if (paired) {
    pay_tmp.resize(out.size());
    charged_local_sort_paired(ctx, w.local_sort, out, (*w.pay_result)[rr],
                              tmp, pay_tmp, w.radix_bits, w.kernels, ws);
  } else {
    charged_local_sort(ctx, w.local_sort, out, tmp, w.radix_bits, w.kernels,
                       ws);
  }
  ctx.phase("barrier");
  w.comm->barrier(ctx);
}

void sample_shmem(sim::ProcContext& ctx, ShmemSampleWorld& w) {
  DSM_REQUIRE(w.sh && w.result, "SHMEM sample world is incomplete");
  const int p = ctx.nprocs();
  const int r = ctx.rank();
  const auto rr = static_cast<std::size_t>(r);
  const auto s = static_cast<std::size_t>(w.sample_count);
  DSM_REQUIRE(w.sample_count >= 1, "need at least one sample per process");
  const sas::HomeMap homes(w.n_total, p);
  const Index n_local = homes.count_of(r);
  DSM_REQUIRE(n_local <= w.part_capacity, "partition exceeds capacity");
  shmem::SymmetricHeap& heap = w.sh->heap();

  const bool paired = w.pay_parts != nullptr;
  DSM_REQUIRE(!paired || w.pay_result != nullptr,
              "payload lanes must mirror the partitions and the result");

  // Phase 1: local sort (in the symmetric segment, so phase 4 can get()).
  ctx.phase("local sort 1");
  std::span<Key> mine(heap.at<Key>(r, w.off_keys), n_local);
  std::vector<Key> tmp(mine.size());
  RadixWorkspace ws;  // kernel scratch shared by both local sort phases
  ws.jobs = w.kernel_jobs;
  std::vector<keys::Payload> pay_tmp;
  if (paired) {
    pay_tmp.resize(mine.size());
    charged_local_sort_paired(ctx, w.local_sort, mine, (*w.pay_parts)[rr],
                              tmp, pay_tmp, w.radix_bits, w.kernels, ws);
  } else {
    charged_local_sort(ctx, w.local_sort, mine, tmp, w.radix_bits, w.kernels,
                       ws);
  }

  // Phases 2+3: fcollect samples; redundant local splitter computation.
  ctx.phase("sampling");
  std::vector<Key> my_samples(s), all_samples(s * static_cast<std::size_t>(p));
  select_samples(ctx, mine, my_samples);
  ctx.phase("splitters");
  w.sh->fcollect<Key>(ctx, my_samples, all_samples);
  std::vector<Splitter> splitters(static_cast<std::size_t>(p - 1));
  pick_splitters(all_samples, w.sample_count, splitters);
  charged_small_sort(ctx, all_samples);

  // Phase 4: boundaries; fcollect them; pull my ranges with get().
  ctx.phase("partition");
  std::vector<std::uint64_t> my_bounds(static_cast<std::size_t>(p + 1));
  charged_boundaries(ctx, mine, splitters, my_bounds);
  std::vector<std::uint64_t> all_bounds(static_cast<std::size_t>(p) *
                                        static_cast<std::size_t>(p + 1));
  w.sh->fcollect<std::uint64_t>(ctx, my_bounds, all_bounds);

  auto bounds_of = [&](int src) {
    return all_bounds.data() +
           static_cast<std::size_t>(src) * static_cast<std::size_t>(p + 1);
  };
  std::uint64_t total = 0;
  for (int j = 0; j < p; ++j) {
    total += bounds_of(j)[r + 1] - bounds_of(j)[r];
  }
  std::vector<Key>& out = (*w.result)[rr];
  out.resize(total);

  ctx.phase("redistribution");
  if (paired) (*w.pay_result)[rr].resize(total);
  std::vector<shmem::GetOp> gets;
  std::uint64_t pos = 0;
  for (int j = 0; j < p; ++j) {
    const std::uint64_t* bj = bounds_of(j);
    const std::uint64_t cnt = bj[r + 1] - bj[r];
    if (cnt == 0) continue;
    if (paired) {
      // Receiver-side payload pull: j's sorted lane is final once the
      // all_bounds fcollect has passed.
      std::memcpy((*w.pay_result)[rr].data() + pos,
                  (*w.pay_parts)[static_cast<std::size_t>(j)].data() + bj[r],
                  cnt * sizeof(keys::Payload));
    }
    if (j == r) {
      exchange_copy(w.kernels, out.data() + pos, mine.data() + bj[r], cnt,
                    total * sizeof(Key));
      ctx.stream(2 * cnt * sizeof(Key), 2 * cnt * sizeof(Key));
    } else {
      gets.push_back(shmem::GetOp{
          reinterpret_cast<std::byte*>(out.data() + pos), j,
          w.off_keys + bj[r] * sizeof(Key), cnt * sizeof(Key)});
    }
    pos += cnt;
  }
  ctx.busy_cycles(static_cast<double>(p) * ctx.params().cpu.scan_cycles);
  w.sh->get_phase(ctx, gets);

  // Phase 5: local sort of the received run.
  ctx.phase("local sort 2");
  tmp.resize(out.size());
  if (paired) {
    pay_tmp.resize(out.size());
    charged_local_sort_paired(ctx, w.local_sort, out, (*w.pay_result)[rr],
                              tmp, pay_tmp, w.radix_bits, w.kernels, ws);
  } else {
    charged_local_sort(ctx, w.local_sort, out, tmp, w.radix_bits, w.kernels,
                       ws);
  }
  ctx.phase("barrier");
  w.sh->barrier_all(ctx);
}

}  // namespace dsm::sort
