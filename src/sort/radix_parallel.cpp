#include "sort/radix_parallel.hpp"

#include <algorithm>
#include <cstring>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "sort/seq_radix.hpp"

namespace dsm::sort {
namespace {

constexpr std::uint64_t kLine = 128;  // Origin L2 line (bytes)

/// Exclusive prefix of `counts` into `starts` (same size), charged.
void exclusive_prefix(sim::ProcContext& ctx,
                      std::span<const std::uint64_t> counts,
                      std::span<std::uint64_t> starts) {
  std::uint64_t acc = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    starts[b] = acc;
    acc += counts[b];
  }
  ctx.busy_cycles(static_cast<double>(counts.size()) *
                  ctx.params().cpu.scan_cycles);
}

/// From allgathered histograms (p rows x B), compute this rank's
/// rank_prefix[b] = sum of lower ranks' bucket-b counts, and the global
/// exclusive bucket starts. Charged as the redundant local computation the
/// MPI/SHMEM versions perform.
void prefixes_from_allhists(sim::ProcContext& ctx,
                            std::span<const std::uint64_t> all_hist,
                            std::size_t buckets,
                            std::span<std::uint64_t> rank_prefix,
                            std::span<std::uint64_t> global_start) {
  const int p = ctx.nprocs();
  const int r = ctx.rank();
  DSM_REQUIRE(all_hist.size() == static_cast<std::size_t>(p) * buckets,
              "allgathered histogram size mismatch");
  std::fill(rank_prefix.begin(), rank_prefix.end(), 0);
  std::fill(global_start.begin(), global_start.end(), 0);
  // global_start temporarily holds global counts.
  for (int j = 0; j < p; ++j) {
    const std::uint64_t* row = all_hist.data() +
                               static_cast<std::size_t>(j) * buckets;
    for (std::size_t b = 0; b < buckets; ++b) {
      if (j < r) rank_prefix[b] += row[b];
      global_start[b] += row[b];
    }
  }
  std::uint64_t acc = 0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::uint64_t c = global_start[b];
    global_start[b] = acc;
    acc += c;
  }
  const auto cells = static_cast<double>(static_cast<std::size_t>(p) * buckets);
  ctx.busy_cycles(cells * ctx.params().cpu.scan_cycles);
  ctx.stream(static_cast<std::uint64_t>(p) * buckets * sizeof(std::uint64_t),
             static_cast<std::uint64_t>(p) * buckets * sizeof(std::uint64_t));
}

/// Buffered local permutation: scatter `keys` into `buf` in bucket-major
/// order (the local staging step of CC-SAS-NEW / MPI / SHMEM). On return
/// `local_prefix[b]` is the start of bucket b's chunk within buf. Charged
/// with the measured run structure; the backend only changes how the host
/// executes the scatter.
void buffered_permute(sim::ProcContext& ctx, std::span<const Key> keys,
                      std::span<Key> buf, int pass, int radix_bits,
                      std::span<const std::uint64_t> local_hist,
                      std::span<std::uint64_t> local_prefix,
                      std::span<std::uint64_t> cursor, std::uint64_t active,
                      KernelBackend be, RadixWorkspace& ws) {
  exclusive_prefix(ctx, local_hist, local_prefix);
  std::copy(local_prefix.begin(), local_prefix.end(), cursor.begin());
  charged_local_permute(ctx, keys, buf, pass, radix_bits, cursor, active, be,
                        ws);
  ctx.busy_cycles(static_cast<double>(keys.size()) *
                  ctx.params().cpu.buffer_copy_cycles);
}

/// Split the contiguous destination range [gpos, gpos+count) by owner
/// partition; fn(dst, gpos_piece, offset_within_chunk, len).
template <typename Fn>
void for_each_piece(const sas::HomeMap& homes, std::uint64_t gpos,
                    std::uint64_t count, Fn&& fn) {
  std::uint64_t off = 0;
  while (count > 0) {
    const int dst = homes.owner_of(gpos);
    const std::uint64_t len = std::min(count, homes.end_of(dst) - gpos);
    fn(dst, gpos, off, len);
    gpos += len;
    off += len;
    count -= len;
  }
}

/// Local max of a key span, charged as one sweep.
Key charged_local_max(sim::ProcContext& ctx, std::span<const Key> keys) {
  Key mx = 0;
  for (const Key k : keys) mx = std::max(mx, k);
  ctx.busy_cycles(static_cast<double>(keys.size()) *
                  ctx.params().cpu.scan_cycles);
  ctx.stream(keys.size() * sizeof(Key), keys.size() * sizeof(Key));
  return mx;
}

}  // namespace

void radix_ccsas(sim::ProcContext& ctx, CcSasRadixWorld& w) {
  DSM_REQUIRE(w.a != nullptr && w.b != nullptr && w.scan != nullptr,
              "CC-SAS radix world is incomplete");
  DSM_REQUIRE(w.a->size() == w.b->size(), "toggle arrays must match");
  const bool paired = w.pay_a != nullptr;
  DSM_REQUIRE(!paired || (w.pay_b != nullptr &&
                          w.pay_a->size() == w.a->size() &&
                          w.pay_b->size() == w.b->size()),
              "payload lanes must mirror both toggle arrays");
  const int p = ctx.nprocs();
  const int r = ctx.rank();
  const std::size_t buckets = std::size_t{1} << w.radix_bits;
  DSM_REQUIRE(w.scan->buckets() == buckets, "BucketScan bucket mismatch");
  const sas::HomeMap& homes = w.a->homes();
  int passes = radix_passes(w.radix_bits);
  if (w.detect_max_key) {
    const Key local_max = charged_local_max(ctx, w.a->partition(r));
    const auto global_max =
        static_cast<Key>(sas::ccsas_max_reduce(ctx, local_max));
    passes = radix_passes_for_max(w.radix_bits, global_max);
  }
  w.passes_used.store(passes, std::memory_order_relaxed);
  const std::uint64_t part_bytes = homes.count_of(r) * sizeof(Key);

  // All per-pass scratch is hoisted here and re-zeroed in the loop, so a
  // pass allocates nothing.
  std::vector<std::uint64_t> hist(buckets), rank_prefix(buckets),
      global_cnt(buckets), global_start(buckets), cursor(buckets),
      local_prefix(buckets), owner_end(buckets);
  std::vector<int> owner(buckets);
  std::vector<std::uint64_t> bytes_to(static_cast<std::size_t>(p)),
      runs_to(static_cast<std::size_t>(p)),
      lines_to(static_cast<std::size_t>(p));
  std::vector<sim::ScatteredTraffic> traffic;
  traffic.reserve(static_cast<std::size_t>(p));
  std::vector<Key> buf(w.buffered ? homes.count_of(r) : 0);
  RadixWorkspace ws;  // hoisted kernel scratch, reused across passes
  ws.jobs = w.kernel_jobs;
  // Payload-mirror scratch (kv32 only): the starting-cursor snapshot the
  // uncharged replay consumes, and the local staging lane for buffered
  // mode.
  std::vector<std::uint64_t> mirror(paired ? buckets : 0);
  std::vector<keys::Payload> pay_buf(
      paired && w.buffered ? homes.count_of(r) : 0);

  sas::SharedArray<Key>* in = w.a;
  sas::SharedArray<Key>* out = w.b;
  std::vector<keys::Payload>* pay_in = w.pay_a;
  std::vector<keys::Payload>* pay_out = w.pay_b;
  const std::uint64_t my_begin = homes.begin_of(r);
  for (int pass = 0; pass < passes; ++pass) {
    const std::span<const Key> my_keys = in->partition(r);
    ctx.phase("local histogram");
    const std::uint64_t active = charged_histogram(
        ctx, my_keys, pass, w.radix_bits, hist, w.kernels, ws);
    ctx.phase("global histogram");
    w.scan->scan(ctx, hist, rank_prefix, global_cnt);
    exclusive_prefix(ctx, global_cnt, global_start);
    ctx.phase("permutation");

    if (!w.buffered) {
      // Original SPLASH-2 style: write each key straight to its global
      // position — temporally scattered remote writes.
      for (std::size_t b = 0; b < buckets; ++b) {
        cursor[b] = global_start[b] + rank_prefix[b];
      }
      if (paired) std::copy(cursor.begin(), cursor.end(), mirror.begin());
      ctx.busy_cycles(static_cast<double>(buckets) *
                      ctx.params().cpu.scan_cycles);
      // Each bucket's write cursor only moves forward, so its home owner
      // advances monotonically too: track it with a boundary compare
      // instead of the integer divide inside owner_of (one divide per key
      // dominates this loop otherwise). Starting every bucket at owner 0
      // costs at most p boundary steps per bucket over the whole pass.
      for (std::size_t b = 0; b < buckets; ++b) {
        owner[b] = 0;
        owner_end[b] = homes.end_of(0);
      }

      const double permute_start_ns = ctx.clock().now_ns();
      Key* const out_data = out->data();
      // Worker-exchange write-combining: under the optimized backend the
      // scattered remote stores are staged per bucket and flushed as
      // contiguous lines (non-temporal on aligned full lines), exactly
      // like the local WC permute. The measurement loop below — cursor
      // positions, home-owner tracking, per-home byte/run tallies — is
      // untouched, so every charge is identical; only the physical store
      // order changes, and flushes land each key at its cursor position.
      const bool stage_writes =
          w.kernels == KernelBackend::kOptimized &&
          buckets * kWcLineKeys * sizeof(Key) <= kernel_staging_bytes() &&
          (part_bytes >= kWcMinFootprintBytes ||
           (buckets >= kernel_wc_min_buckets() &&
            my_keys.size() >= buckets * kWcLineKeys));
      Key* wc = nullptr;
      std::uint32_t* wfill = nullptr;
      std::uint32_t* wneed = nullptr;
      if (stage_writes) {
        ws.prepare(w.radix_bits, 1);
        wc = ws.wc_keys.data();
        wfill = ws.wc_fill.data();
        wneed = ws.wc_need.data();
        // Phase each bucket's first flush to the destination's next
        // 64-byte boundary so later full-line flushes can stream.
        for (std::size_t b = 0; b < buckets; ++b) {
          const auto addr =
              reinterpret_cast<std::uintptr_t>(out_data + cursor[b]);
          const std::size_t off = (addr % 64u) / sizeof(Key);
          wneed[b] = static_cast<std::uint32_t>(
              off == 0 ? kWcLineKeys : kWcLineKeys - off);
        }
      }
      std::uint64_t local_accesses = 0, local_runs = 0;
      std::fill(bytes_to.begin(), bytes_to.end(), 0);
      std::fill(runs_to.begin(), runs_to.end(), 0);
      std::uint32_t prev_digit = ~0u;
      for (const Key k : my_keys) {
        const std::uint32_t d = radix_digit(k, pass, w.radix_bits);
        const std::uint64_t pos = cursor[d]++;
        if (!stage_writes) {
          out_data[pos] = k;
        } else {
          std::uint32_t f = wfill[d];
          wc[d * kWcLineKeys + f] = k;
          ++f;
          if (f == wneed[d]) {
            wc_flush(out_data + (pos + 1 - f), wc + d * kWcLineKeys, f);
            wneed[d] = kWcLineKeys;
            f = 0;
          }
          wfill[d] = f;
        }
        while (pos >= owner_end[d]) {
          ++owner[d];
          owner_end[d] = homes.end_of(owner[d]);
        }
        const int home = owner[d];
        const bool new_run = d != prev_digit;
        prev_digit = d;
        if (home == r) {
          ++local_accesses;
          local_runs += new_run ? 1 : 0;
        } else {
          bytes_to[static_cast<std::size_t>(home)] += sizeof(Key);
          runs_to[static_cast<std::size_t>(home)] += new_run ? 1 : 0;
        }
      }
      if (stage_writes) {
        // Drain partial lines (restoring the all-zero staging invariant)
        // and fence the streamed stores before the ownership hand-off.
        for (std::size_t b = 0; b < buckets; ++b) {
          const std::uint32_t f = wfill[b];
          if (f == 0) continue;
          wc_flush(out_data + (cursor[b] - f), wc + b * kWcLineKeys, f);
          wfill[b] = 0;
        }
        wc_store_fence();
      }
      if (paired) {
        // Uncharged host-side replay of the exact scatter above, from the
        // snapshotted starting cursors, onto the global payload lane.
        payload_mirror_scatter(
            my_keys,
            std::span<const keys::Payload>(pay_in->data() + my_begin,
                                           my_keys.size()),
            std::span<keys::Payload>(*pay_out), pass, w.radix_bits, mirror);
      }
      ctx.busy_cycles(static_cast<double>(my_keys.size()) *
                      ctx.params().cpu.permute_cycles);
      ctx.stream(my_keys.size() * sizeof(Key), part_bytes);
      if (local_accesses > 0) {
        machine::AccessPattern ap;
        ap.accesses = local_accesses;
        ap.elem_bytes = sizeof(Key);
        ap.runs = std::max<std::uint64_t>(1, local_runs);
        ap.active_regions = std::max<std::uint64_t>(1, active);
        ap.footprint_bytes = part_bytes;
        ctx.scattered(ap);
      }
      std::uint64_t remote_bytes = 0;
      for (int h = 0; h < p; ++h) {
        remote_bytes += bytes_to[static_cast<std::size_t>(h)];
      }
      const auto profile = ctx.cost().scattered_write_profile(remote_bytes);
      traffic.clear();
      for (int h = 0; h < p; ++h) {
        const auto hh = static_cast<std::size_t>(h);
        if (bytes_to[hh] == 0) continue;
        sim::ScatteredTraffic t;
        t.writer = r;
        t.home = h;
        // Fine-grained interleaving re-fetches a line on almost every run
        // switch; contiguous tails within a run transfer at line grain.
        t.lines = std::max<std::uint64_t>(std::max<std::uint64_t>(1, runs_to[hh]),
                                          ceil_div(bytes_to[hh], kLine));
        t.per_line_ns = profile.per_line_ns;
        t.transactions =
            static_cast<double>(t.lines) * profile.transactions_per_line;
        traffic.push_back(t);
      }
      // The stores overlap the permutation computation charged above.
      const double overlap = ctx.clock().now_ns() - permute_start_ns;
      ctx.team().scattered_write_epoch(ctx, traffic, overlap);
    } else {
      // CC-SAS-NEW (§4.2.1): buffer locally, then copy contiguous chunks.
      const double permute_start_ns = ctx.clock().now_ns();
      buffered_permute(ctx, my_keys, buf, pass, w.radix_bits, hist,
                       local_prefix, cursor, active, w.kernels, ws);
      if (paired) {
        // Replay the staging scatter on the payload lane (local_prefix
        // still holds the bucket starts; cursor was the consumed copy).
        std::copy(local_prefix.begin(), local_prefix.end(), mirror.begin());
        payload_mirror_scatter(
            my_keys,
            std::span<const keys::Payload>(pay_in->data() + my_begin,
                                           my_keys.size()),
            pay_buf, pass, w.radix_bits, mirror);
      }
      Key* const out_data = out->data();
      std::fill(lines_to.begin(), lines_to.end(), 0);
      std::uint64_t local_bytes = 0;
      for (std::size_t b = 0; b < buckets; ++b) {
        if (hist[b] == 0) continue;
        const std::uint64_t gpos = global_start[b] + rank_prefix[b];
        for_each_piece(homes, gpos, hist[b],
                       [&](int dst, std::uint64_t gp, std::uint64_t off,
                           std::uint64_t len) {
                         exchange_copy(w.kernels, out_data + gp,
                                       buf.data() + local_prefix[b] + off,
                                       len, part_bytes);
                         if (paired) {
                           std::memcpy(pay_out->data() + gp,
                                       pay_buf.data() + local_prefix[b] + off,
                                       len * sizeof(keys::Payload));
                         }
                         if (dst == r) {
                           local_bytes += len * sizeof(Key);
                         } else {
                           lines_to[static_cast<std::size_t>(dst)] +=
                               ceil_div(len * sizeof(Key), kLine);
                         }
                       });
      }
      if (local_bytes > 0) ctx.stream(2 * local_bytes, part_bytes);
      // The copy-out re-reads the staging buffer for the remote chunks.
      std::uint64_t remote_lines = 0;
      for (const std::uint64_t l : lines_to) remote_lines += l;
      if (remote_lines > 0) ctx.stream(remote_lines * kLine, 2 * part_bytes);
      traffic.clear();
      for (int h = 0; h < p; ++h) {
        const auto hh = static_cast<std::size_t>(h);
        if (lines_to[hh] == 0) continue;
        sim::ScatteredTraffic t;
        t.writer = r;
        t.home = h;
        t.lines = lines_to[hh];
        t.per_line_ns = ctx.params().mem.ccsas_block_line_ns;
        // One pipelined RdEx per line.
        t.transactions = static_cast<double>(lines_to[hh]);
        traffic.push_back(t);
      }
      const double overlap = ctx.clock().now_ns() - permute_start_ns;
      ctx.team().scattered_write_epoch(ctx, traffic, overlap);
    }

    ctx.phase("barrier");
    sas::ccsas_barrier(ctx);
    std::swap(in, out);
    std::swap(pay_in, pay_out);
  }
}

void radix_mpi(sim::ProcContext& ctx, MpiRadixWorld& w) {
  DSM_REQUIRE(w.comm != nullptr && w.parts_a != nullptr && w.parts_b != nullptr,
              "MPI radix world is incomplete");
  const bool paired = w.pay_a != nullptr;
  DSM_REQUIRE(!paired || (w.pay_b != nullptr && w.chunk_messages),
              "payload lanes need both mirrors and chunked messages");
  const int p = ctx.nprocs();
  const int r = ctx.rank();
  const std::size_t buckets = std::size_t{1} << w.radix_bits;

  Index n_total = 0;
  for (const auto& part : *w.parts_a) n_total += part.size();
  const sas::HomeMap homes(n_total, p);
  const auto rr = static_cast<std::size_t>(r);
  DSM_REQUIRE((*w.parts_a)[rr].size() == homes.count_of(r) &&
                  (*w.parts_b)[rr].size() == homes.count_of(r),
              "partition sizes must follow the block HomeMap");
  const Index n_local = homes.count_of(r);
  const std::uint64_t part_bytes = n_local * sizeof(Key);

  std::vector<std::uint64_t> hist(buckets), rank_prefix(buckets),
      global_start(buckets), local_prefix(buckets), cursor(buckets),
      run_prefix(buckets);
  std::vector<std::uint64_t> all_hist(static_cast<std::size_t>(p) * buckets);
  std::vector<std::uint64_t> matrix;  // coalesced-mode p x p key counts
  std::vector<msg::Communicator::Send> sends;
  std::vector<Key> buf(n_local);
  RadixWorkspace ws;  // hoisted kernel scratch, reused across passes
  ws.jobs = w.kernel_jobs;
  std::vector<Key> stage;  // coalesced-mode receive staging
  if (!w.chunk_messages) {
    stage.resize(n_local);
    matrix.resize(static_cast<std::size_t>(p) * static_cast<std::size_t>(p));
  }
  // Payload-mirror scratch (kv32 only; see CcSasRadixWorld::pay_a).
  std::vector<std::uint64_t> mirror(paired ? buckets : 0);
  std::vector<keys::Payload> pay_buf(paired ? n_local : 0);
  std::vector<std::vector<keys::Payload>>* pay_parts_in = w.pay_a;
  std::vector<std::vector<keys::Payload>>* pay_parts_out = w.pay_b;

  std::vector<Key>* in = &(*w.parts_a)[rr];
  std::vector<Key>* out = &(*w.parts_b)[rr];
  int passes = radix_passes(w.radix_bits);
  if (w.detect_max_key) {
    const Key local_max = charged_local_max(ctx, *in);
    const Key global_max = w.comm->allreduce_max<Key>(ctx, local_max);
    passes = radix_passes_for_max(w.radix_bits, global_max);
  }
  w.passes_used.store(passes, std::memory_order_relaxed);
  for (int pass = 0; pass < passes; ++pass) {
    ctx.phase("local histogram");
    const std::uint64_t active =
        charged_histogram(ctx, *in, pass, w.radix_bits, hist, w.kernels, ws);
    ctx.phase("global histogram");
    w.comm->allgather<std::uint64_t>(ctx, hist, all_hist);
    prefixes_from_allhists(ctx, all_hist, buckets, rank_prefix, global_start);
    ctx.phase("permutation");
    buffered_permute(ctx, *in, buf, pass, w.radix_bits, hist, local_prefix,
                     cursor, active, w.kernels, ws);
    if (paired) {
      // Replay the staging scatter on the payload lane (see radix_ccsas).
      std::copy(local_prefix.begin(), local_prefix.end(), mirror.begin());
      payload_mirror_scatter(*in, (*pay_parts_in)[rr], pay_buf, pass,
                             w.radix_bits, mirror);
    }
    ctx.phase("redistribution");

    sends.clear();
    if (w.chunk_messages) {
      // One message per contiguously-destined chunk piece (the paper's
      // preferred implementation) — placed directly at its final offset.
      for (std::size_t b = 0; b < buckets; ++b) {
        if (hist[b] == 0) continue;
        const std::uint64_t gpos = global_start[b] + rank_prefix[b];
        for_each_piece(
            homes, gpos, hist[b],
            [&](int dst, std::uint64_t gp, std::uint64_t off,
                std::uint64_t len) {
              const Key* src = buf.data() + local_prefix[b] + off;
              if (paired) {
                // Sender-side payload push: destination lanes are
                // preallocated, pieces land at disjoint final offsets, and
                // the collective exchange below orders every lane write
                // before the receiver's next-pass reads.
                std::memcpy(
                    (*pay_parts_out)[static_cast<std::size_t>(dst)].data() +
                        (gp - homes.begin_of(dst)),
                    pay_buf.data() + local_prefix[b] + off,
                    len * sizeof(keys::Payload));
              }
              if (dst == r) {
                exchange_copy(w.kernels, out->data() + (gp - homes.begin_of(r)),
                              src, len, part_bytes);
                ctx.stream(2 * len * sizeof(Key), part_bytes);
                return;
              }
              sends.push_back(msg::Communicator::Send{
                  dst, (gp - homes.begin_of(dst)) * sizeof(Key),
                  reinterpret_cast<const std::byte*>(src), len * sizeof(Key)});
            });
      }
      w.comm->exchange(ctx, sends,
                       std::as_writable_bytes(std::span<Key>(*out)));
    } else {
      // NAS-IS style ablation: one coalesced message per destination; the
      // receiver reorganises pieces into place afterwards. A destination's
      // pieces are contiguous in the bucket-major staging buffer (global
      // positions ascend with the bucket), so the sender needs no extra
      // copy — the cost moves to the receiver-side scatter.
      //
      // M[i][dst] = keys process i contributes to dst's partition, built
      // in O(p * buckets) with running per-bucket rank prefixes.
      std::fill(matrix.begin(), matrix.end(), 0);
      std::fill(run_prefix.begin(), run_prefix.end(), 0);
      for (int j = 0; j < p; ++j) {
        const std::uint64_t* row =
            all_hist.data() + static_cast<std::size_t>(j) * buckets;
        for (std::size_t b = 0; b < buckets; ++b) {
          if (row[b] == 0) continue;
          for_each_piece(homes, global_start[b] + run_prefix[b], row[b],
                         [&](int dst, std::uint64_t, std::uint64_t,
                             std::uint64_t len) {
                           matrix[static_cast<std::size_t>(j) *
                                      static_cast<std::size_t>(p) +
                                  static_cast<std::size_t>(dst)] += len;
                         });
          run_prefix[b] += row[b];
        }
      }
      ctx.busy_cycles(static_cast<double>(static_cast<std::size_t>(p) *
                                          buckets) *
                      ctx.params().cpu.scan_cycles);

      auto keys_from_to = [&](int src, int dst) {
        return matrix[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(p) +
                      static_cast<std::size_t>(dst)];
      };
      // My blob for dst starts where my pieces to lower dsts end.
      std::uint64_t my_buf_off = 0;
      for (int dst = 0; dst < p; ++dst) {
        const std::uint64_t len = keys_from_to(r, dst);
        if (len == 0) continue;
        std::uint64_t stage_off = 0;  // dst's staging offset for my blob
        for (int i = 0; i < r; ++i) stage_off += keys_from_to(i, dst);
        if (dst != r) {
          sends.push_back(msg::Communicator::Send{
              dst, stage_off * sizeof(Key),
              reinterpret_cast<const std::byte*>(buf.data() + my_buf_off),
              len * sizeof(Key)});
        } else {
          exchange_copy(w.kernels, stage.data() + stage_off,
                        buf.data() + my_buf_off, len, part_bytes);
          ctx.stream(2 * len * sizeof(Key), part_bytes);
        }
        my_buf_off += len;
      }
      w.comm->exchange(ctx, sends,
                       std::as_writable_bytes(std::span<Key>(stage)));

      // Receiver-side reorganisation: scatter pieces from the (by-source,
      // by-bucket ordered) staging area to their final positions.
      const std::uint64_t my_begin = homes.begin_of(r);
      const std::uint64_t my_end = homes.end_of(r);
      std::fill(run_prefix.begin(), run_prefix.end(), 0);
      std::uint64_t stage_pos = 0;
      std::uint64_t pieces = 0;
      for (int j = 0; j < p; ++j) {
        const std::uint64_t* row =
            all_hist.data() + static_cast<std::size_t>(j) * buckets;
        for (std::size_t b = 0; b < buckets; ++b) {
          const std::uint64_t cnt = row[b];
          if (cnt == 0) continue;
          const std::uint64_t gpos = global_start[b] + run_prefix[b];
          const std::uint64_t lo = std::max(gpos, my_begin);
          const std::uint64_t hi = std::min(gpos + cnt, my_end);
          if (lo < hi) {
            exchange_copy(w.kernels, out->data() + (lo - my_begin),
                          stage.data() + stage_pos, hi - lo, part_bytes);
            stage_pos += hi - lo;
            ++pieces;
          }
          run_prefix[b] += cnt;
        }
      }
      DSM_CHECK(stage_pos == n_local, "coalesced staging must refill the partition");
      ctx.busy_cycles(static_cast<double>(n_local) *
                      ctx.params().cpu.buffer_copy_cycles);
      ctx.stream(n_local * sizeof(Key), part_bytes);  // staging read
      if (n_local > 0) {
        machine::AccessPattern ap;
        ap.accesses = n_local;
        ap.elem_bytes = sizeof(Key);
        ap.runs = std::max<std::uint64_t>(1, pieces);
        ap.active_regions = std::max<std::uint64_t>(1, pieces);
        ap.footprint_bytes = part_bytes;
        ctx.scattered(ap);
      }
    }

    std::swap(in, out);
    std::swap(pay_parts_in, pay_parts_out);
  }
  if (passes % 2 != 0) {
    exchange_copy(w.kernels, out->data(), in->data(), n_local, part_bytes);
    if (paired) {
      std::memcpy((*pay_parts_out)[rr].data(), (*pay_parts_in)[rr].data(),
                  n_local * sizeof(keys::Payload));
    }
    std::swap(in, out);
    ctx.stream(2 * part_bytes, 2 * part_bytes);
  }
}

void radix_shmem(sim::ProcContext& ctx, ShmemRadixWorld& w) {
  DSM_REQUIRE(w.sh != nullptr, "SHMEM radix world is incomplete");
  const bool paired = w.pay_a != nullptr;
  DSM_REQUIRE(!paired || (w.pay_b != nullptr && w.pay_stage != nullptr &&
                          !w.use_put),
              "payload lanes need all three mirrors and the get path");
  const int p = ctx.nprocs();
  const int r = ctx.rank();
  const std::size_t buckets = std::size_t{1} << w.radix_bits;
  const sas::HomeMap homes(w.n_total, p);
  const Index n_local = homes.count_of(r);
  DSM_REQUIRE(n_local <= w.part_capacity, "partition exceeds capacity");
  const std::uint64_t part_bytes = n_local * sizeof(Key);
  shmem::SymmetricHeap& heap = w.sh->heap();

  std::vector<std::uint64_t> hist(buckets), rank_prefix(buckets),
      global_start(buckets), local_prefix(buckets), cursor(buckets),
      run_prefix(buckets);
  std::vector<std::uint64_t> all_hist(static_cast<std::size_t>(p) * buckets);
  std::vector<shmem::GetOp> gets;
  std::vector<shmem::PutOp> puts;
  RadixWorkspace ws;  // hoisted kernel scratch, reused across passes
  ws.jobs = w.kernel_jobs;
  // Payload-mirror scratch (kv32 only; see ShmemRadixWorld::pay_a).
  std::vector<std::uint64_t> mirror(paired ? buckets : 0);
  std::vector<std::vector<keys::Payload>>* pay_parts_in = w.pay_a;
  std::vector<std::vector<keys::Payload>>* pay_parts_out = w.pay_b;
  const auto rr = static_cast<std::size_t>(r);

  std::uint64_t in_off = w.off_a;
  std::uint64_t out_off = w.off_b;
  int passes = radix_passes(w.radix_bits);
  if (w.detect_max_key) {
    const Key local_max = charged_local_max(
        ctx, std::span<const Key>(heap.at<Key>(r, in_off), n_local));
    const Key global_max = w.sh->max_to_all<Key>(ctx, local_max);
    passes = radix_passes_for_max(w.radix_bits, global_max);
  }
  w.passes_used.store(passes, std::memory_order_relaxed);
  bool cold_input = false;
  for (int pass = 0; pass < passes; ++pass) {
    Key* const in = heap.at<Key>(r, in_off);
    const std::span<const Key> my_keys(in, n_local);
    if (cold_input) {
      // Put-based delivery (ablation) leaves the keys in memory, not in
      // this PE's cache: charge the cold re-fetch a get would have hidden.
      const double extra =
          ctx.cost().stream_ns(part_bytes, ctx.params().l2.bytes * 2) -
          ctx.cost().stream_ns(part_bytes, part_bytes);
      if (extra > 0) ctx.clock().charge(sim::Cat::kLMem, extra);
      cold_input = false;
    }
    ctx.phase("local histogram");
    const std::uint64_t active = charged_histogram(
        ctx, my_keys, pass, w.radix_bits, hist, w.kernels, ws);
    ctx.phase("global histogram");
    w.sh->fcollect<std::uint64_t>(ctx, hist, all_hist);
    prefixes_from_allhists(ctx, all_hist, buckets, rank_prefix, global_start);

    ctx.phase("permutation");
    Key* const stage = heap.at<Key>(r, w.off_stage);
    buffered_permute(ctx, my_keys, std::span<Key>(stage, n_local), pass,
                     w.radix_bits, hist, local_prefix, cursor, active,
                     w.kernels, ws);
    if (paired) {
      // Replay the staging scatter on this PE's staged payload lane; the
      // barrier below publishes it alongside the symmetric staging buffer.
      std::copy(local_prefix.begin(), local_prefix.end(), mirror.begin());
      payload_mirror_scatter(my_keys, (*pay_parts_in)[rr],
                             (*w.pay_stage)[rr], pass, w.radix_bits, mirror);
    }
    ctx.phase("redistribution");
    w.sh->barrier_all(ctx);  // staging buffers are now globally readable

    if (!w.use_put) {
      // Receiver-initiated: fetch every chunk piece that lands in my
      // partition from its source PE's staging buffer.
      Key* const out = heap.at<Key>(r, out_off);
      const std::uint64_t my_begin = homes.begin_of(r);
      const std::uint64_t my_end = homes.end_of(r);
      gets.clear();
      std::fill(run_prefix.begin(), run_prefix.end(), 0);  // sum of ranks < j
      for (int j = 0; j < p; ++j) {
        const std::uint64_t* row =
            all_hist.data() + static_cast<std::size_t>(j) * buckets;
        std::uint64_t src_prefix = 0;  // local prefix within j's staging
        for (std::size_t b = 0; b < buckets; ++b) {
          const std::uint64_t cnt = row[b];
          if (cnt != 0) {
            const std::uint64_t gpos = global_start[b] + run_prefix[b];
            const std::uint64_t lo = std::max(gpos, my_begin);
            const std::uint64_t hi = std::min(gpos + cnt, my_end);
            if (lo < hi) {
              const std::uint64_t bytes = (hi - lo) * sizeof(Key);
              const std::uint64_t src_off =
                  w.off_stage + (src_prefix + (lo - gpos)) * sizeof(Key);
              if (paired) {
                // Receiver-side payload pull from j's staged lane,
                // published by the pre-redistribution barrier.
                std::memcpy(
                    (*pay_parts_out)[rr].data() + (lo - my_begin),
                    (*w.pay_stage)[static_cast<std::size_t>(j)].data() +
                        (src_prefix + (lo - gpos)),
                    (hi - lo) * sizeof(keys::Payload));
              }
              if (j == r) {
                exchange_copy(w.kernels, out + (lo - my_begin),
                              stage + src_prefix + (lo - gpos),
                              bytes / sizeof(Key), part_bytes);
                ctx.stream(2 * bytes, part_bytes);
              } else {
                gets.push_back(shmem::GetOp{
                    reinterpret_cast<std::byte*>(out + (lo - my_begin)), j,
                    src_off, bytes});
              }
            }
            run_prefix[b] += cnt;
            src_prefix += cnt;
          }
        }
      }
      // Parameter computation sweep over the p x B histogram matrix.
      ctx.busy_cycles(static_cast<double>(static_cast<std::size_t>(p) *
                                          buckets) *
                      ctx.params().cpu.scan_cycles);
      w.sh->get_phase(ctx, gets);
    } else {
      // Sender-initiated ablation: push my chunks into their destinations.
      puts.clear();
      for (std::size_t b = 0; b < buckets; ++b) {
        if (hist[b] == 0) continue;
        const std::uint64_t gpos = global_start[b] + rank_prefix[b];
        for_each_piece(
            homes, gpos, hist[b],
            [&](int dst, std::uint64_t gp, std::uint64_t off,
                std::uint64_t len) {
              const Key* src = stage + local_prefix[b] + off;
              const std::uint64_t dst_off =
                  out_off + (gp - homes.begin_of(dst)) * sizeof(Key);
              if (dst == r) {
                exchange_copy(w.kernels,
                              heap.at<Key>(r, out_off) + (gp - homes.begin_of(r)),
                              src, len, part_bytes);
                ctx.stream(2 * len * sizeof(Key), part_bytes);
                return;
              }
              puts.push_back(shmem::PutOp{
                  reinterpret_cast<const std::byte*>(src), dst, dst_off,
                  len * sizeof(Key)});
            });
      }
      w.sh->put_phase(ctx, puts);
      cold_input = true;
    }
    w.sh->barrier_all(ctx);
    std::swap(in_off, out_off);
    std::swap(pay_parts_in, pay_parts_out);
  }
  if (passes % 2 != 0) {
    exchange_copy(w.kernels, heap.at<Key>(r, w.off_a),
                  heap.at<Key>(r, w.off_b), n_local, part_bytes);
    if (paired) {
      std::memcpy((*w.pay_a)[rr].data(), (*pay_parts_in)[rr].data(),
                  n_local * sizeof(keys::Payload));
    }
    ctx.stream(2 * part_bytes, 2 * part_bytes);
  }
}

}  // namespace dsm::sort
