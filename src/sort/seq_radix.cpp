#include "sort/seq_radix.hpp"

#include <algorithm>
#include <vector>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace dsm::sort {

int radix_passes(int radix_bits) {
  DSM_REQUIRE(radix_bits >= 1 && radix_bits <= 20, "radix bits out of range");
  return static_cast<int>(ceil_div(kKeyBits, static_cast<std::uint64_t>(radix_bits)));
}

int radix_passes_for_max(int radix_bits, Key max_key) {
  DSM_REQUIRE(radix_bits >= 1 && radix_bits <= 20, "radix bits out of range");
  const int bits = std::max(1, bit_width_u64(max_key));
  return static_cast<int>(
      ceil_div(static_cast<std::uint64_t>(bits),
               static_cast<std::uint64_t>(radix_bits)));
}

void seq_radix_sort(std::span<Key> keys, std::span<Key> tmp, int radix_bits) {
  DSM_REQUIRE(tmp.size() >= keys.size(), "tmp must be at least as large");
  const int passes = radix_passes(radix_bits);
  const std::size_t buckets = std::size_t{1} << radix_bits;
  std::vector<std::uint64_t> hist(buckets);

  Key* in = keys.data();
  Key* out = tmp.data();
  const std::size_t n = keys.size();
  for (int pass = 0; pass < passes; ++pass) {
    std::fill(hist.begin(), hist.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++hist[radix_digit(in[i], pass, radix_bits)];
    }
    std::uint64_t acc = 0;
    for (std::size_t b = 0; b < buckets; ++b) {
      const std::uint64_t c = hist[b];
      hist[b] = acc;
      acc += c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      out[hist[radix_digit(in[i], pass, radix_bits)]++] = in[i];
    }
    std::swap(in, out);
  }
  if (in != keys.data()) {
    std::copy_n(in, n, keys.data());
  }
}

std::uint64_t charged_histogram(sim::ProcContext& ctx,
                                std::span<const Key> keys, int pass,
                                int radix_bits,
                                std::span<std::uint64_t> hist) {
  const std::size_t buckets = std::size_t{1} << radix_bits;
  DSM_REQUIRE(hist.size() == buckets, "histogram span size mismatch");
  std::fill(hist.begin(), hist.end(), 0);
  for (const Key k : keys) ++hist[radix_digit(k, pass, radix_bits)];
  std::uint64_t active = 0;
  for (const std::uint64_t c : hist) active += c != 0 ? 1 : 0;

  const auto n = static_cast<std::uint64_t>(keys.size());
  const auto& cpu = ctx.params().cpu;
  ctx.busy_cycles(static_cast<double>(n) * cpu.hist_update_cycles);
  ctx.stream(n * sizeof(Key), n * sizeof(Key));  // key sweep
  // Bucket counters: clear + increments stay resident (2^r * 8 bytes).
  ctx.stream(buckets * sizeof(std::uint64_t), buckets * sizeof(std::uint64_t));
  return active;
}

void charged_local_permute(sim::ProcContext& ctx, std::span<const Key> keys,
                           std::span<Key> out, int pass, int radix_bits,
                           std::span<std::uint64_t> offset,
                           std::uint64_t active) {
  const std::size_t buckets = std::size_t{1} << radix_bits;
  DSM_REQUIRE(offset.size() == buckets, "offset span size mismatch");
  const std::size_t n = keys.size();
  // Hoisted bounds sanity: every write cursor starts inside the output
  // (the per-element check stays as a debug-only assertion so the release
  // hot loop does not branch per key).
  DSM_REQUIRE(n <= out.size(), "output smaller than the key span");
  for (const std::uint64_t o : offset) {
    DSM_REQUIRE(o <= out.size(), "permutation cursor starts past the output");
  }
  std::uint64_t runs = 0;
  std::uint32_t prev_digit = ~0u;
  for (std::size_t i = 0; i < n; ++i) {
    const Key k = keys[i];
    const std::uint32_t d = radix_digit(k, pass, radix_bits);
    const std::uint64_t pos = offset[d]++;
    DSM_DCHECK(pos < out.size(), "permutation writes past the output");
    out[pos] = k;
    runs += d != prev_digit ? 1 : 0;
    prev_digit = d;
  }
  if (n == 0) return;

  const auto& cpu = ctx.params().cpu;
  ctx.busy_cycles(static_cast<double>(n) * cpu.permute_cycles);
  ctx.stream(n * sizeof(Key), n * sizeof(Key));  // read the source keys
  machine::AccessPattern p;
  p.accesses = n;
  p.elem_bytes = sizeof(Key);
  p.runs = runs;
  p.active_regions = std::max<std::uint64_t>(1, active);
  // Both toggle arrays compete for the cache during a pass.
  p.footprint_bytes = 2 * out.size() * sizeof(Key);
  ctx.scattered(p);
}

void local_radix_sort(sim::ProcContext& ctx, std::span<Key> keys,
                      std::span<Key> tmp, int radix_bits) {
  DSM_REQUIRE(tmp.size() >= keys.size(), "tmp must be at least as large");
  const int passes = radix_passes(radix_bits);
  const std::size_t buckets = std::size_t{1} << radix_bits;
  std::vector<std::uint64_t> hist(buckets);
  const auto& cpu = ctx.params().cpu;

  std::span<Key> in = keys;
  std::span<Key> out = tmp.subspan(0, keys.size());
  for (int pass = 0; pass < passes; ++pass) {
    const std::uint64_t active =
        charged_histogram(ctx, in, pass, radix_bits, hist);
    // Exclusive prefix -> running write cursors.
    std::uint64_t acc = 0;
    for (std::size_t b = 0; b < buckets; ++b) {
      const std::uint64_t c = hist[b];
      hist[b] = acc;
      acc += c;
    }
    ctx.busy_cycles(static_cast<double>(buckets) * cpu.scan_cycles);
    charged_local_permute(ctx, in, out, pass, radix_bits, hist, active);
    std::swap(in, out);
  }
  if (in.data() != keys.data()) {
    std::copy_n(in.data(), keys.size(), keys.data());
    ctx.stream(2 * keys.size() * sizeof(Key), 2 * keys.size() * sizeof(Key));
  }
}

}  // namespace dsm::sort
