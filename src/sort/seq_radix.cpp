#include "sort/seq_radix.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace dsm::sort {
namespace {

/// Charges of one counting pass, shared by both backends so they cannot
/// drift: per-key BUSY updates, the key sweep, the resident counters
/// (2^r * 8 bytes cleared + incremented).
void charge_histogram_pass(sim::ProcContext& ctx, std::uint64_t n,
                           std::size_t buckets) {
  const auto& cpu = ctx.params().cpu;
  ctx.busy_cycles(static_cast<double>(n) * cpu.hist_update_cycles);
  ctx.stream(n * sizeof(Key), n * sizeof(Key));  // key sweep
  ctx.stream(buckets * sizeof(std::uint64_t),
             buckets * sizeof(std::uint64_t));
}

/// Charges of one permutation pass, parameterised by the measured run
/// structure (`runs`, `active`) — pure functions of the key order, hence
/// identical under every backend.
void charge_permute_pass(sim::ProcContext& ctx, std::uint64_t n,
                         std::uint64_t runs, std::uint64_t active,
                         std::uint64_t out_size) {
  if (n == 0) return;
  const auto& cpu = ctx.params().cpu;
  ctx.busy_cycles(static_cast<double>(n) * cpu.permute_cycles);
  ctx.stream(n * sizeof(Key), n * sizeof(Key));  // read the source keys
  machine::AccessPattern p;
  p.accesses = n;
  p.elem_bytes = sizeof(Key);
  p.runs = runs;
  p.active_regions = std::max<std::uint64_t>(1, active);
  // Both toggle arrays compete for the cache during a pass.
  p.footprint_bytes = 2 * out_size * sizeof(Key);
  ctx.scattered(p);
}

/// Exclusive prefix of `counts` into `cursor` (write cursors), returning
/// the nonzero bucket count from the same sweep. Fused because n << 2^r
/// sorts are bound by these bucket loops, not the key sweeps.
std::uint64_t exclusive_prefix_active(std::span<const std::uint64_t> counts,
                                      std::span<std::uint64_t> cursor) {
  std::uint64_t acc = 0;
  std::uint64_t active = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t c = counts[b];
    cursor[b] = acc;
    acc += c;
    active += c != 0 ? 1 : 0;
  }
  return active;
}

/// Snapshot the permute's starting cursors for the payload mirror: the
/// key permute consumes `cursor`, and the mirror must replay the same
/// stable scatter from the same starting positions.
std::span<std::uint64_t> snapshot_cursor(RadixWorkspace& ws,
                                         std::span<const std::uint64_t> cursor) {
  if (ws.pay_cursor.size() < cursor.size()) ws.pay_cursor.resize(cursor.size());
  std::copy(cursor.begin(), cursor.end(), ws.pay_cursor.begin());
  return {ws.pay_cursor.data(), cursor.size()};
}

}  // namespace

int radix_passes(int radix_bits) {
  DSM_REQUIRE(radix_bits >= 1 && radix_bits <= 20, "radix bits out of range");
  return static_cast<int>(ceil_div(kKeyBits, static_cast<std::uint64_t>(radix_bits)));
}

int radix_passes_for_max(int radix_bits, Key max_key) {
  DSM_REQUIRE(radix_bits >= 1 && radix_bits <= 20, "radix bits out of range");
  const int bits = std::max(1, bit_width_u64(max_key));
  return static_cast<int>(
      ceil_div(static_cast<std::uint64_t>(bits),
               static_cast<std::uint64_t>(radix_bits)));
}

void seq_radix_sort(std::span<Key> keys, std::span<Key> tmp, int radix_bits) {
  seq_radix_sort(keys, tmp, radix_bits, default_kernel_backend(),
                 tls_radix_workspace());
}

void seq_radix_sort(std::span<Key> keys, std::span<Key> tmp, int radix_bits,
                    KernelBackend be, RadixWorkspace& ws) {
  DSM_REQUIRE(tmp.size() >= keys.size(), "tmp must be at least as large");
  const int passes = radix_passes(radix_bits);
  const std::size_t buckets = std::size_t{1} << radix_bits;
  const std::size_t n = keys.size();

  if (be == KernelBackend::kReference) {
    ws.prepare(radix_bits);
    const std::span<std::uint64_t> hist(ws.hist.data(), buckets);
    Key* in = keys.data();
    Key* out = tmp.data();
    for (int pass = 0; pass < passes; ++pass) {
      std::fill(hist.begin(), hist.end(), 0);
      for (std::size_t i = 0; i < n; ++i) {
        ++hist[radix_digit(in[i], pass, radix_bits)];
      }
      std::uint64_t acc = 0;
      for (std::size_t b = 0; b < buckets; ++b) {
        const std::uint64_t c = hist[b];
        hist[b] = acc;
        acc += c;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const Key k = in[i];
        out[hist[radix_digit(k, pass, radix_bits)]++] = k;
      }
      std::swap(in, out);
    }
    if (in != keys.data()) {
      std::copy_n(in, n, keys.data());
    }
    return;
  }

  ws.prepare(radix_bits, passes);
  const std::span<std::uint64_t> pass_hist(
      ws.pass_hist.data(), static_cast<std::size_t>(passes) * buckets);
  multi_histogram_kernel(be, keys, passes, radix_bits, pass_hist, ws);
  const std::span<std::uint64_t> cursor(ws.hist.data(), buckets);
  bool in_keys = true;  // which toggle buffer currently holds the data
  for (int pass = 0; pass < passes; ++pass) {
    const std::span<const std::uint64_t> hist_p = pass_hist.subspan(
        static_cast<std::size_t>(pass) * buckets, buckets);
    const std::uint64_t active = exclusive_prefix_active(hist_p, cursor);
    // A single-digit pass is the identity permutation (its one bucket's
    // exclusive prefix is 0): skip the pass entirely — this is where the
    // passes radix_passes_for_max would drop actually cost nothing.
    if (active <= 1) continue;
    const std::span<Key> src = in_keys ? keys : tmp.subspan(0, n);
    const std::span<Key> dst = in_keys ? tmp.subspan(0, n) : keys;
    (void)permute_kernel(be, src, dst, pass, radix_bits, cursor, active, ws);
    in_keys = !in_keys;
  }
  if (!in_keys) {
    std::copy_n(tmp.data(), n, keys.data());
  }
}

std::uint64_t charged_histogram(sim::ProcContext& ctx,
                                std::span<const Key> keys, int pass,
                                int radix_bits,
                                std::span<std::uint64_t> hist) {
  const std::size_t buckets = std::size_t{1} << radix_bits;
  DSM_REQUIRE(hist.size() == buckets, "histogram span size mismatch");
  const std::uint64_t active = histogram_kernel(
      default_kernel_backend(), keys, pass, radix_bits, hist);
  charge_histogram_pass(ctx, keys.size(), buckets);
  return active;
}

std::uint64_t charged_histogram(sim::ProcContext& ctx,
                                std::span<const Key> keys, int pass,
                                int radix_bits, std::span<std::uint64_t> hist,
                                KernelBackend be, RadixWorkspace& ws) {
  const std::size_t buckets = std::size_t{1} << radix_bits;
  DSM_REQUIRE(hist.size() == buckets, "histogram span size mismatch");
  const std::uint64_t active =
      histogram_kernel(be, keys, pass, radix_bits, hist, ws);
  charge_histogram_pass(ctx, keys.size(), buckets);
  return active;
}

void charged_local_permute(sim::ProcContext& ctx, std::span<const Key> keys,
                           std::span<Key> out, int pass, int radix_bits,
                           std::span<std::uint64_t> offset,
                           std::uint64_t active) {
  charged_local_permute(ctx, keys, out, pass, radix_bits, offset, active,
                        default_kernel_backend(), tls_radix_workspace());
}

void charged_local_permute(sim::ProcContext& ctx, std::span<const Key> keys,
                           std::span<Key> out, int pass, int radix_bits,
                           std::span<std::uint64_t> offset,
                           std::uint64_t active, KernelBackend be,
                           RadixWorkspace& ws) {
  const std::size_t buckets = std::size_t{1} << radix_bits;
  DSM_REQUIRE(offset.size() == buckets, "offset span size mismatch");
  const std::size_t n = keys.size();
  // Hoisted bounds sanity: every write cursor starts inside the output
  // (the per-element check stays as a debug-only assertion so the release
  // hot loop does not branch per key).
  DSM_REQUIRE(n <= out.size(), "output smaller than the key span");
  for (const std::uint64_t o : offset) {
    DSM_REQUIRE(o <= out.size(), "permutation cursor starts past the output");
  }
  const std::uint64_t runs =
      permute_kernel(be, keys, out, pass, radix_bits, offset, active, ws);
  charge_permute_pass(ctx, n, runs, active, out.size());
}

void local_radix_sort(sim::ProcContext& ctx, std::span<Key> keys,
                      std::span<Key> tmp, int radix_bits) {
  local_radix_sort(ctx, keys, tmp, radix_bits, default_kernel_backend(),
                   tls_radix_workspace());
}

void local_radix_sort(sim::ProcContext& ctx, std::span<Key> keys,
                      std::span<Key> tmp, int radix_bits, KernelBackend be,
                      RadixWorkspace& ws) {
  DSM_REQUIRE(tmp.size() >= keys.size(), "tmp must be at least as large");
  const int passes = radix_passes(radix_bits);
  const std::size_t buckets = std::size_t{1} << radix_bits;
  const std::size_t n = keys.size();
  const auto& cpu = ctx.params().cpu;

  if (be == KernelBackend::kReference) {
    ws.prepare(radix_bits);
    const std::span<std::uint64_t> hist(ws.hist.data(), buckets);
    std::span<Key> in = keys;
    std::span<Key> out = tmp.subspan(0, n);
    for (int pass = 0; pass < passes; ++pass) {
      const std::uint64_t active =
          charged_histogram(ctx, in, pass, radix_bits, hist);
      // Exclusive prefix -> running write cursors.
      std::uint64_t acc = 0;
      for (std::size_t b = 0; b < buckets; ++b) {
        const std::uint64_t c = hist[b];
        hist[b] = acc;
        acc += c;
      }
      ctx.busy_cycles(static_cast<double>(buckets) * cpu.scan_cycles);
      charged_local_permute(ctx, in, out, pass, radix_bits, hist, active, be,
                            ws);
      std::swap(in, out);
    }
    if (in.data() != keys.data()) {
      std::copy_n(in.data(), n, keys.data());
      ctx.stream(2 * n * sizeof(Key), 2 * n * sizeof(Key));
    }
    return;
  }

  // Optimized pipeline. The per-pass digit histograms of a private local
  // sort are permutation-invariant (each pass only reorders the same key
  // multiset), so one real sweep over the initial keys yields every
  // pass's histogram — the simulator still charges one counting sweep
  // per pass, exactly as the reference executes it.
  ws.prepare(radix_bits, passes);
  const std::span<std::uint64_t> pass_hist(
      ws.pass_hist.data(), static_cast<std::size_t>(passes) * buckets);
  multi_histogram_kernel(be, keys, passes, radix_bits, pass_hist, ws);
  const std::span<std::uint64_t> cursor(ws.hist.data(), buckets);
  bool in_keys = true;  // which buffer physically holds the data
  for (int pass = 0; pass < passes; ++pass) {
    const std::span<const std::uint64_t> hist_p = pass_hist.subspan(
        static_cast<std::size_t>(pass) * buckets, buckets);
    const std::uint64_t active = exclusive_prefix_active(hist_p, cursor);
    charge_histogram_pass(ctx, n, buckets);
    ctx.busy_cycles(static_cast<double>(buckets) * cpu.scan_cycles);
    if (active <= 1) {
      // Dead pass: the identity permutation. Charge exactly what the
      // reference measures for it (one run, one active bucket) and move
      // no data — the buffer toggle is logical only.
      charge_permute_pass(ctx, n, n > 0 ? 1 : 0, active, n);
    } else {
      const std::span<Key> src = in_keys ? keys : tmp.subspan(0, n);
      const std::span<Key> dst = in_keys ? tmp.subspan(0, n) : keys;
      const std::uint64_t runs =
          permute_kernel(be, src, dst, pass, radix_bits, cursor, active, ws);
      charge_permute_pass(ctx, n, runs, active, n);
      in_keys = !in_keys;
    }
  }
  // The reference copies back (and charges the copy) iff the total pass
  // count is odd; physically we copy iff the data ended up in tmp.
  if (passes % 2 != 0) {
    ctx.stream(2 * n * sizeof(Key), 2 * n * sizeof(Key));
  }
  if (!in_keys) {
    std::copy_n(tmp.data(), n, keys.data());
  }
}

void seq_radix_sort_paired(std::span<Key> keys, std::span<keys::Payload> pays,
                           std::span<Key> tmp,
                           std::span<keys::Payload> pay_tmp, int radix_bits) {
  seq_radix_sort_paired(keys, pays, tmp, pay_tmp, radix_bits,
                        default_kernel_backend(), tls_radix_workspace());
}

void seq_radix_sort_paired(std::span<Key> keys, std::span<keys::Payload> pays,
                           std::span<Key> tmp,
                           std::span<keys::Payload> pay_tmp, int radix_bits,
                           KernelBackend be, RadixWorkspace& ws) {
  DSM_REQUIRE(tmp.size() >= keys.size(), "tmp must be at least as large");
  DSM_REQUIRE(pays.size() == keys.size() && pay_tmp.size() >= keys.size(),
              "payload lanes must match the key span");
  const int passes = radix_passes(radix_bits);
  const std::size_t buckets = std::size_t{1} << radix_bits;
  const std::size_t n = keys.size();

  if (be == KernelBackend::kReference) {
    ws.prepare(radix_bits);
    const std::span<std::uint64_t> hist(ws.hist.data(), buckets);
    std::span<Key> in = keys;
    std::span<Key> out = tmp.subspan(0, n);
    std::span<keys::Payload> pin = pays;
    std::span<keys::Payload> pout = pay_tmp.subspan(0, n);
    for (int pass = 0; pass < passes; ++pass) {
      const std::uint64_t active =
          histogram_kernel(be, in, pass, radix_bits, hist);
      std::uint64_t acc = 0;
      for (std::size_t b = 0; b < buckets; ++b) {
        const std::uint64_t c = hist[b];
        hist[b] = acc;
        acc += c;
      }
      const std::span<std::uint64_t> mirror = snapshot_cursor(ws, hist);
      (void)permute_kernel(be, in, out, pass, radix_bits, hist, active, ws);
      payload_mirror_scatter(in, pin, pout, pass, radix_bits, mirror);
      std::swap(in, out);
      std::swap(pin, pout);
    }
    if (in.data() != keys.data()) {
      std::copy_n(in.data(), n, keys.data());
      std::copy_n(pin.data(), n, pays.data());
    }
    return;
  }

  ws.prepare(radix_bits, passes);
  const std::span<std::uint64_t> pass_hist(
      ws.pass_hist.data(), static_cast<std::size_t>(passes) * buckets);
  multi_histogram_kernel(be, keys, passes, radix_bits, pass_hist, ws);
  const std::span<std::uint64_t> cursor(ws.hist.data(), buckets);
  bool in_keys = true;
  for (int pass = 0; pass < passes; ++pass) {
    const std::span<const std::uint64_t> hist_p = pass_hist.subspan(
        static_cast<std::size_t>(pass) * buckets, buckets);
    const std::uint64_t active = exclusive_prefix_active(hist_p, cursor);
    // Dead pass: the identity permutation moves neither lane.
    if (active <= 1) continue;
    const std::span<Key> src = in_keys ? keys : tmp.subspan(0, n);
    const std::span<Key> dst = in_keys ? tmp.subspan(0, n) : keys;
    const std::span<keys::Payload> psrc =
        in_keys ? pays : pay_tmp.subspan(0, n);
    const std::span<keys::Payload> pdst =
        in_keys ? pay_tmp.subspan(0, n) : pays;
    const std::span<std::uint64_t> mirror = snapshot_cursor(ws, cursor);
    (void)permute_kernel(be, src, dst, pass, radix_bits, cursor, active, ws);
    payload_mirror_scatter(src, psrc, pdst, pass, radix_bits, mirror);
    in_keys = !in_keys;
  }
  if (!in_keys) {
    std::copy_n(tmp.data(), n, keys.data());
    std::copy_n(pay_tmp.data(), n, pays.data());
  }
}

void local_radix_sort_paired(sim::ProcContext& ctx, std::span<Key> keys,
                             std::span<keys::Payload> pays, std::span<Key> tmp,
                             std::span<keys::Payload> pay_tmp,
                             int radix_bits) {
  local_radix_sort_paired(ctx, keys, pays, tmp, pay_tmp, radix_bits,
                          default_kernel_backend(), tls_radix_workspace());
}

void local_radix_sort_paired(sim::ProcContext& ctx, std::span<Key> keys,
                             std::span<keys::Payload> pays, std::span<Key> tmp,
                             std::span<keys::Payload> pay_tmp, int radix_bits,
                             KernelBackend be, RadixWorkspace& ws) {
  DSM_REQUIRE(tmp.size() >= keys.size(), "tmp must be at least as large");
  DSM_REQUIRE(pays.size() == keys.size() && pay_tmp.size() >= keys.size(),
              "payload lanes must match the key span");
  const int passes = radix_passes(radix_bits);
  const std::size_t buckets = std::size_t{1} << radix_bits;
  const std::size_t n = keys.size();
  const auto& cpu = ctx.params().cpu;

  if (be == KernelBackend::kReference) {
    ws.prepare(radix_bits);
    const std::span<std::uint64_t> hist(ws.hist.data(), buckets);
    std::span<Key> in = keys;
    std::span<Key> out = tmp.subspan(0, n);
    std::span<keys::Payload> pin = pays;
    std::span<keys::Payload> pout = pay_tmp.subspan(0, n);
    for (int pass = 0; pass < passes; ++pass) {
      const std::uint64_t active =
          charged_histogram(ctx, in, pass, radix_bits, hist, be, ws);
      std::uint64_t acc = 0;
      for (std::size_t b = 0; b < buckets; ++b) {
        const std::uint64_t c = hist[b];
        hist[b] = acc;
        acc += c;
      }
      ctx.busy_cycles(static_cast<double>(buckets) * cpu.scan_cycles);
      const std::span<std::uint64_t> mirror = snapshot_cursor(ws, hist);
      charged_local_permute(ctx, in, out, pass, radix_bits, hist, active, be,
                            ws);
      payload_mirror_scatter(in, pin, pout, pass, radix_bits, mirror);
      std::swap(in, out);
      std::swap(pin, pout);
    }
    if (in.data() != keys.data()) {
      std::copy_n(in.data(), n, keys.data());
      std::copy_n(pin.data(), n, pays.data());
      ctx.stream(2 * n * sizeof(Key), 2 * n * sizeof(Key));
    }
    return;
  }

  // Optimized pipeline — the charge sequence below replicates
  // local_radix_sort exactly (the payload mirror adds nothing charged).
  ws.prepare(radix_bits, passes);
  const std::span<std::uint64_t> pass_hist(
      ws.pass_hist.data(), static_cast<std::size_t>(passes) * buckets);
  multi_histogram_kernel(be, keys, passes, radix_bits, pass_hist, ws);
  const std::span<std::uint64_t> cursor(ws.hist.data(), buckets);
  bool in_keys = true;
  for (int pass = 0; pass < passes; ++pass) {
    const std::span<const std::uint64_t> hist_p = pass_hist.subspan(
        static_cast<std::size_t>(pass) * buckets, buckets);
    const std::uint64_t active = exclusive_prefix_active(hist_p, cursor);
    charge_histogram_pass(ctx, n, buckets);
    ctx.busy_cycles(static_cast<double>(buckets) * cpu.scan_cycles);
    if (active <= 1) {
      charge_permute_pass(ctx, n, n > 0 ? 1 : 0, active, n);
    } else {
      const std::span<Key> src = in_keys ? keys : tmp.subspan(0, n);
      const std::span<Key> dst = in_keys ? tmp.subspan(0, n) : keys;
      const std::span<keys::Payload> psrc =
          in_keys ? pays : pay_tmp.subspan(0, n);
      const std::span<keys::Payload> pdst =
          in_keys ? pay_tmp.subspan(0, n) : pays;
      const std::span<std::uint64_t> mirror = snapshot_cursor(ws, cursor);
      const std::uint64_t runs =
          permute_kernel(be, src, dst, pass, radix_bits, cursor, active, ws);
      charge_permute_pass(ctx, n, runs, active, n);
      payload_mirror_scatter(src, psrc, pdst, pass, radix_bits, mirror);
      in_keys = !in_keys;
    }
  }
  if (passes % 2 != 0) {
    ctx.stream(2 * n * sizeof(Key), 2 * n * sizeof(Key));
  }
  if (!in_keys) {
    std::copy_n(tmp.data(), n, keys.data());
    std::copy_n(pay_tmp.data(), n, pays.data());
  }
}

}  // namespace dsm::sort
