#include "msg/communicator.hpp"

#include <algorithm>

#include "common/bits.hpp"

namespace dsm::msg {

Communicator::Communicator(sim::SimTeam& team, Impl impl)
    : team_(team),
      impl_(impl),
      cfg_(two_sided_config(team.cost().params(), impl)),
      staging_(static_cast<std::size_t>(team.nprocs())) {}

void Communicator::exchange(sim::ProcContext& ctx,
                            std::span<const Send> sends,
                            std::span<std::byte> window) {
  const int p = nprocs();
  const int r = ctx.rank();

  struct WinInfo {
    std::byte* ptr;
    std::uint64_t size;
  };
  const WinInfo mine{window.data(), window.size()};
  using Windows = std::shared_ptr<const std::vector<WinInfo>>;
  auto windows = team_.reconcile<WinInfo, Windows>(
      ctx, mine, [](std::span<const WinInfo* const> wins) {
        auto all = std::make_shared<std::vector<WinInfo>>();
        all->reserve(wins.size());
        for (const WinInfo* w : wins) all->push_back(*w);
        return std::vector<Windows>(wins.size(), all);
      });

  // Validate everything before touching remote memory so a malformed send
  // raises an error instead of corrupting another rank's window.
  for (const Send& s : sends) {
    DSM_REQUIRE(s.dst >= 0 && s.dst < p, "send dst out of range");
    DSM_REQUIRE(s.bytes > 0, "empty sends must not be posted");
    const WinInfo& w = (*windows)[static_cast<std::size_t>(s.dst)];
    DSM_REQUIRE(s.dst_offset + s.bytes <= w.size,
                "send overflows the destination window");
  }

  std::vector<sim::Transfer> transfers;
  transfers.reserve(sends.size());
  auto& stage = staging_[static_cast<std::size_t>(r)];
  for (const Send& s : sends) {
    std::byte* dst = (*windows)[static_cast<std::size_t>(s.dst)].ptr +
                     s.dst_offset;
    if (s.dst == r) {
      // Local delivery: a plain memory copy, charged as local streaming.
      std::memcpy(dst, s.data, s.bytes);
      ctx.stream(2 * s.bytes, 2 * s.bytes);
      continue;
    }
    if (impl_ == Impl::kStaged) {
      // Pure message passing: payload really goes through the library
      // bounce buffer (copy in, copy out).
      stage.resize(std::max<std::size_t>(stage.size(), s.bytes));
      std::memcpy(stage.data(), s.data, s.bytes);
      std::memcpy(dst, stage.data(), s.bytes);
    } else {
      std::memcpy(dst, s.data, s.bytes);
    }
    transfers.push_back(sim::Transfer{r, s.dst, s.bytes});
  }

  team_.two_sided_epoch(ctx, std::move(transfers), cfg_);
}

void Communicator::charge_allgather(sim::ProcContext& ctx,
                                    std::uint64_t block_bytes) {
  const int p = nprocs();
  const int r = ctx.rank();
  const int rounds = bit_width_u64(static_cast<std::uint64_t>(p) - 1);
  double ns = 0;
  std::uint64_t have = block_bytes;
  for (int k = 0; k < rounds; ++k) {
    const int partner = (r + (1 << k)) % p;
    ns += cfg_.send_overhead_ns + cfg_.recv_overhead_ns +
          ctx.cost().wire_ns(r, partner, have) +
          (cfg_.send_copy_ns_per_byte + cfg_.recv_copy_ns_per_byte) *
              static_cast<double>(have);
    have = std::min<std::uint64_t>(2 * have,
                                   block_bytes * static_cast<std::uint64_t>(p));
  }
  ctx.rmem_ns(ns);
}

int Communicator::bit_width_of_pm1() const {
  return bit_width_u64(static_cast<std::uint64_t>(nprocs()) - 1);
}

void Communicator::charge_tree(sim::ProcContext& ctx, std::uint64_t bytes) {
  // Binomial tree: log2(p) rounds; each participating rank forwards one
  // block per round.
  const int rounds = bit_width_of_pm1();
  const int partner = (ctx.rank() + 1) % nprocs();
  ctx.rmem_ns(static_cast<double>(rounds) *
              (cfg_.send_overhead_ns + cfg_.recv_overhead_ns +
               ctx.cost().wire_ns(ctx.rank(), partner, bytes) +
               (cfg_.send_copy_ns_per_byte + cfg_.recv_copy_ns_per_byte) *
                   static_cast<double>(bytes)));
}

void Communicator::barrier(sim::ProcContext& ctx) {
  const int p = nprocs();
  const int rounds = bit_width_u64(static_cast<std::uint64_t>(p) - 1);
  ctx.rmem_ns(static_cast<double>(rounds) *
              (cfg_.send_overhead_ns + cfg_.recv_overhead_ns));
  team_.vbarrier(ctx);
}

}  // namespace dsm::msg
