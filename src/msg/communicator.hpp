// MPI-like communicator over the virtual-time engine.
//
// Supplies the operations the paper's MPI sorting codes use:
//   * exchange()  — a bulk point-to-point phase (irecv-all/isend-all/
//     waitall idiom): every rank registers its receive window and posts
//     sends that land at explicit offsets in remote windows (the radix
//     program's "one message per contiguously-destined chunk").
//   * allgather() — used for histogram and sample collection.
//   * barrier().
//
// Payloads really move (the staged transport really copies through a
// bounce buffer); timing comes from the two-sided DES epoch with per-pair
// message slots.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "msg/transport.hpp"
#include "sim/team.hpp"

namespace dsm::msg {

class Communicator {
 public:
  /// Construct one shared Communicator per team (outside run()).
  Communicator(sim::SimTeam& team, Impl impl);

  Impl impl() const { return impl_; }
  int nprocs() const { return team_.nprocs(); }

  /// One posted send: `bytes` from `data` into the destination rank's
  /// receive window at byte offset `dst_offset`.
  struct Send {
    int dst = 0;
    std::uint64_t dst_offset = 0;
    const std::byte* data = nullptr;
    std::uint64_t bytes = 0;
  };

  /// Collective bulk exchange. Every rank passes its posted sends (in
  /// order) and its receive window. On return, all inbound payloads are in
  /// place. Throws (team-wide) if any send overflows its destination
  /// window.
  void exchange(sim::ProcContext& ctx, std::span<const Send> sends,
                std::span<std::byte> window);

  /// Collective allgather: `in` from every rank concatenated (by rank)
  /// into `out` (size in.size() * nprocs) on every rank.
  template <typename T>
  void allgather(sim::ProcContext& ctx, std::span<const T> in,
                 std::span<T> out) {
    DSM_REQUIRE(out.size() == in.size() * static_cast<std::size_t>(nprocs()),
                "allgather output must hold nprocs blocks");
    struct Block {
      const T* data;
      std::size_t count;
    };
    const Block mine{in.data(), in.size()};
    auto all = team_.reconcile<Block, std::shared_ptr<const std::vector<T>>>(
        ctx, mine, [](std::span<const Block* const> blocks) {
          auto gathered = std::make_shared<std::vector<T>>();
          std::size_t total = 0;
          for (const Block* b : blocks) {
            DSM_REQUIRE(b->count == blocks[0]->count,
                        "allgather blocks must have equal size");
            total += b->count;
          }
          gathered->reserve(total);
          for (const Block* b : blocks) {
            gathered->insert(gathered->end(), b->data, b->data + b->count);
          }
          return std::vector<std::shared_ptr<const std::vector<T>>>(
              blocks.size(), gathered);
        });
    std::memcpy(out.data(), all->data(), all->size() * sizeof(T));
    charge_allgather(ctx, in.size() * sizeof(T));
    ctx.team().vbarrier(ctx);
  }

  /// Collective barrier (dissemination rounds + reconciliation).
  void barrier(sim::ProcContext& ctx);

  /// Collective broadcast from `root`: on exit every rank's `data` holds
  /// the root's contents. Binomial-tree cost model.
  template <typename T>
  void bcast(sim::ProcContext& ctx, int root, std::span<T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    DSM_REQUIRE(root >= 0 && root < nprocs(), "bcast root out of range");
    struct Block {
      const T* data;
      std::size_t count;
    };
    const Block mine{data.data(), data.size()};
    auto all = team_.reconcile<Block, std::shared_ptr<const std::vector<T>>>(
        ctx, mine, [root](std::span<const Block* const> blocks) {
          for (const Block* b : blocks) {
            DSM_REQUIRE(b->count == blocks[0]->count,
                        "bcast blocks must have equal size");
          }
          const Block* r = blocks[static_cast<std::size_t>(root)];
          auto payload =
              std::make_shared<std::vector<T>>(r->data, r->data + r->count);
          return std::vector<std::shared_ptr<const std::vector<T>>>(
              blocks.size(), payload);
        });
    std::memcpy(data.data(), all->data(), all->size() * sizeof(T));
    charge_tree(ctx, data.size() * sizeof(T));
    ctx.team().vbarrier(ctx);
  }

  /// Collective element-wise sum reduction to `root`: root's `data`
  /// becomes the element-wise sum over all ranks; other ranks' buffers are
  /// unchanged. Binomial-tree cost model.
  template <typename T>
  void reduce_sum(sim::ProcContext& ctx, int root, std::span<T> data) {
    static_assert(std::is_arithmetic_v<T>);
    DSM_REQUIRE(root >= 0 && root < nprocs(), "reduce root out of range");
    struct Block {
      const T* data;
      std::size_t count;
    };
    const Block mine{data.data(), data.size()};
    auto sum = team_.reconcile<Block, std::shared_ptr<const std::vector<T>>>(
        ctx, mine, [](std::span<const Block* const> blocks) {
          auto total = std::make_shared<std::vector<T>>(blocks[0]->count,
                                                        T{});
          for (const Block* b : blocks) {
            DSM_REQUIRE(b->count == blocks[0]->count,
                        "reduce blocks must have equal size");
            for (std::size_t i = 0; i < b->count; ++i) {
              (*total)[i] += b->data[i];
            }
          }
          return std::vector<std::shared_ptr<const std::vector<T>>>(
              blocks.size(), total);
        });
    if (ctx.rank() == root) {
      std::memcpy(data.data(), sum->data(), sum->size() * sizeof(T));
    }
    charge_tree(ctx, data.size() * sizeof(T));
    // Reduction adds every received element.
    ctx.busy_cycles(static_cast<double>(data.size()) *
                    ctx.params().cpu.scan_cycles *
                    std::max(1, bit_width_of_pm1()));
    ctx.team().vbarrier(ctx);
  }

  /// Collective gather to `root`: root's `out` (count * nprocs) receives
  /// every rank's `in` block, concatenated by rank; `out` is ignored on
  /// other ranks (may be empty).
  template <typename T>
  void gather(sim::ProcContext& ctx, int root, std::span<const T> in,
              std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    DSM_REQUIRE(root >= 0 && root < nprocs(), "gather root out of range");
    DSM_REQUIRE(ctx.rank() != root ||
                    out.size() == in.size() * static_cast<std::size_t>(nprocs()),
                "gather output must hold nprocs blocks at the root");
    struct Block {
      const T* data;
      std::size_t count;
    };
    const Block mine{in.data(), in.size()};
    auto all = team_.reconcile<Block, std::shared_ptr<const std::vector<T>>>(
        ctx, mine, [](std::span<const Block* const> blocks) {
          auto gathered = std::make_shared<std::vector<T>>();
          for (const Block* b : blocks) {
            DSM_REQUIRE(b->count == blocks[0]->count,
                        "gather blocks must have equal size");
            gathered->insert(gathered->end(), b->data, b->data + b->count);
          }
          return std::vector<std::shared_ptr<const std::vector<T>>>(
              blocks.size(), gathered);
        });
    if (ctx.rank() == root) {
      std::memcpy(out.data(), all->data(), all->size() * sizeof(T));
      // Root drains p-1 inbound blocks.
      ctx.rmem_ns(static_cast<double>(nprocs() - 1) *
                  (cfg_.recv_overhead_ns +
                   ctx.cost().wire_ns(ctx.rank(), (ctx.rank() + 1) % nprocs(),
                                      in.size() * sizeof(T))));
    } else {
      ctx.rmem_ns(cfg_.send_overhead_ns +
                  (cfg_.send_copy_ns_per_byte)*
                      static_cast<double>(in.size() * sizeof(T)));
    }
    ctx.team().vbarrier(ctx);
  }

  /// Collective max-allreduce of a single value (MPI_Allreduce MAX).
  template <typename T>
  T allreduce_max(sim::ProcContext& ctx, T value) {
    static_assert(std::is_arithmetic_v<T>);
    const T result = team_.reconcile<T, T>(
        ctx, value, [](std::span<const T* const> vals) {
          T mx = *vals[0];
          for (const T* v : vals) mx = std::max(mx, *v);
          return std::vector<T>(vals.size(), mx);
        });
    charge_tree(ctx, sizeof(T));
    ctx.team().vbarrier(ctx);
    return result;
  }

  /// MPI_Alltoallv-style personalised exchange of T elements:
  /// `sendcounts[d]` elements go from this rank's `sendbuf` (packed in
  /// destination order) to rank d; `recvcounts[s]` elements arrive from
  /// rank s into `recvbuf` (packed in source order). Counts must be
  /// globally consistent (sendcounts[d] here == recvcounts[here] on d);
  /// inconsistency raises a team-wide error.
  template <typename T>
  void alltoallv(sim::ProcContext& ctx, std::span<const T> sendbuf,
                 std::span<const std::uint64_t> sendcounts,
                 std::span<T> recvbuf,
                 std::span<const std::uint64_t> recvcounts) {
    static_assert(std::is_trivially_copyable_v<T>);
    const int p = nprocs();
    const int r = ctx.rank();
    DSM_REQUIRE(sendcounts.size() == static_cast<std::size_t>(p) &&
                    recvcounts.size() == static_cast<std::size_t>(p),
                "alltoallv counts must have one entry per rank");
    std::uint64_t send_total = 0, recv_total = 0;
    for (int i = 0; i < p; ++i) {
      send_total += sendcounts[static_cast<std::size_t>(i)];
      recv_total += recvcounts[static_cast<std::size_t>(i)];
    }
    DSM_REQUIRE(sendbuf.size() == send_total, "sendbuf size mismatch");
    DSM_REQUIRE(recvbuf.size() == recv_total, "recvbuf size mismatch");

    // Publish every rank's recvcounts row so senders can place payloads at
    // the receiver-side displacements (the library-internal handshake).
    struct Row {
      const std::uint64_t* counts;
    };
    const Row mine{recvcounts.data()};
    using Matrix = std::shared_ptr<const std::vector<std::uint64_t>>;
    auto all_rc = team_.reconcile<Row, Matrix>(
        ctx, mine, [p](std::span<const Row* const> rows) {
          auto m = std::make_shared<std::vector<std::uint64_t>>();
          m->reserve(static_cast<std::size_t>(p) * static_cast<std::size_t>(p));
          for (const Row* row : rows) {
            m->insert(m->end(), row->counts,
                      row->counts + static_cast<std::size_t>(p));
          }
          return std::vector<Matrix>(rows.size(), m);
        });
    auto rc_of = [&](int dst, int src) {
      return (*all_rc)[static_cast<std::size_t>(dst) *
                           static_cast<std::size_t>(p) +
                       static_cast<std::size_t>(src)];
    };

    std::vector<Send> sends;
    std::uint64_t send_off = 0;
    for (int dst = 0; dst < p; ++dst) {
      const std::uint64_t cnt = sendcounts[static_cast<std::size_t>(dst)];
      DSM_REQUIRE(rc_of(dst, r) == cnt,
                  "alltoallv counts are globally inconsistent");
      if (cnt != 0) {
        std::uint64_t dst_off = 0;
        for (int s = 0; s < r; ++s) dst_off += rc_of(dst, s);
        const T* src_ptr = sendbuf.data() + send_off;
        if (dst == r) {
          std::memcpy(recvbuf.data() + dst_off, src_ptr, cnt * sizeof(T));
          ctx.stream(2 * cnt * sizeof(T), 2 * cnt * sizeof(T));
        } else {
          sends.push_back(Send{dst, dst_off * sizeof(T),
                               reinterpret_cast<const std::byte*>(src_ptr),
                               cnt * sizeof(T)});
        }
      }
      send_off += cnt;
    }
    exchange(ctx, sends, std::as_writable_bytes(recvbuf));
  }

 private:
  int bit_width_of_pm1() const;

  /// Binomial-tree collective cost: log2(p) rounds of one block.
  void charge_tree(sim::ProcContext& ctx, std::uint64_t bytes);

  /// Recursive-doubling cost: log2(p) rounds, block doubling each round.
  void charge_allgather(sim::ProcContext& ctx, std::uint64_t block_bytes);

  sim::SimTeam& team_;
  Impl impl_;
  sim::TwoSidedConfig cfg_;
  // Per-rank staging bounce buffers (staged transport only).
  std::vector<std::vector<std::byte>> staging_;
};

}  // namespace dsm::msg
