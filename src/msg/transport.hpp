// Message-passing transports.
//
// The paper compares two MPI implementations on the Origin 2000:
//   * the vendor's ("SGI MPT"): a *pure* message-passing model in which the
//     library stages every payload through an internal bounce buffer (copy
//     in by the sender, copy out by the receiver) to support asynchrony —
//     the extra copies are the overhead the paper blames for its poor
//     radix performance;
//   * the authors' modified MPICH ("NEW"): an *impure* model that deposits
//     payloads directly into the destination process's address space via
//     lock-free 1-deep per-pair message slots — no staging copies, but
//     back-to-back messages to the same destination stall on the slot
//     (the paper's explanation for MPI's elevated SYNC time vs SHMEM).
//
// Both transports here move the real bytes (Staged genuinely copies
// through a bounce buffer); their timing parameters feed the two-sided
// discrete-event epoch engine.
#pragma once

#include "machine/params.hpp"
#include "sim/epoch.hpp"

namespace dsm::msg {

enum class Impl {
  kDirect,  // the authors' modified MPICH ("NEW")
  kStaged,  // vendor-style pure message passing ("SGI")
};

const char* impl_name(Impl impl);

/// Timing configuration for the two-sided epoch engine under `impl`.
sim::TwoSidedConfig two_sided_config(const machine::MachineParams& mp,
                                     Impl impl);

}  // namespace dsm::msg
