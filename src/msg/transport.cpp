#include "msg/transport.hpp"

namespace dsm::msg {

const char* impl_name(Impl impl) {
  switch (impl) {
    case Impl::kDirect: return "NEW";
    case Impl::kStaged: return "SGI";
  }
  return "?";
}

sim::TwoSidedConfig two_sided_config(const machine::MachineParams& mp,
                                     Impl impl) {
  sim::TwoSidedConfig cfg;
  if (impl == Impl::kDirect) {
    cfg.send_overhead_ns = mp.sw.mpi_send_overhead_ns;
    cfg.recv_overhead_ns = mp.sw.mpi_recv_overhead_ns;
    // The impure model's defining move: the sender deposits the payload
    // directly into the destination address space, so the sender's CPU
    // performs the (one) copy at bulk remote-copy bandwidth.
    cfg.send_copy_ns_per_byte = 1.0 / mp.mem.bulk_copy_bytes_per_ns;
    cfg.slot_depth = mp.sw.mpi_slot_depth;
  } else {
    cfg.send_overhead_ns = mp.sw.mpi_staged_send_overhead_ns;
    cfg.recv_overhead_ns = mp.sw.mpi_staged_recv_overhead_ns;
    // Staging copies: the sender copies into the library bounce buffer at
    // local memcpy bandwidth; the receiver copies out of the (remotely
    // homed) bounce buffer at bulk remote-copy bandwidth. The payload thus
    // crosses memory twice — the pure model's fundamental tax.
    cfg.send_copy_ns_per_byte = 1.0 / mp.sw.copy_bytes_per_ns;
    cfg.recv_copy_ns_per_byte = 1.0 / mp.mem.bulk_copy_bytes_per_ns;
    // Library buffering decouples the pair: effectively deep slots.
    cfg.slot_depth = 1 << 20;
  }
  return cfg;
}

}  // namespace dsm::msg
