// CC-SAS shared arrays with page-granular homes.
//
// In the CC-SAS model, data lives in one global address space; what makes
// an access local or remote is *where the page is homed*. The paper's
// radix/sample programs partition their key arrays p ways with each
// partition homed at its owning process (the SPLASH-2 programs initialise
// partitions locally, so first-touch produces exactly this block layout).
//
// SharedArray is functionally a plain array visible to every simulated
// process; HomeMap answers "which process' memory does element i live in"
// so the kernels can classify their traffic for the cost model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace dsm::sas {

/// Block partition of [0, n) over nprocs owners (remainder spread over the
/// leading owners, like the paper's "its assigned keys").
class HomeMap {
 public:
  HomeMap(Index n, int nprocs);

  Index size() const { return n_; }
  int nprocs() const { return nprocs_; }

  Index begin_of(int proc) const;
  Index end_of(int proc) const { return begin_of(proc + 1); }
  Index count_of(int proc) const { return end_of(proc) - begin_of(proc); }

  /// Owner of element index i.
  int owner_of(Index i) const;

 private:
  Index n_;
  int nprocs_;
  Index base_;   // n / p
  Index extra_;  // n % p — first `extra_` owners get base_+1
};

template <typename T>
class SharedArray {
 public:
  SharedArray(Index n, int nprocs) : homes_(n, nprocs), data_(n) {}

  Index size() const { return homes_.size(); }
  const HomeMap& homes() const { return homes_; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  std::span<T> all() { return std::span<T>(data_); }
  std::span<const T> all() const { return std::span<const T>(data_); }

  /// The partition homed at (owned by) `proc`.
  std::span<T> partition(int proc) {
    return all().subspan(homes_.begin_of(proc), homes_.count_of(proc));
  }
  std::span<const T> partition(int proc) const {
    return all().subspan(homes_.begin_of(proc), homes_.count_of(proc));
  }

 private:
  HomeMap homes_;
  std::vector<T> data_;
};

}  // namespace dsm::sas
