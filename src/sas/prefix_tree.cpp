#include "sas/prefix_tree.hpp"

#include <algorithm>
#include <cstring>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "sim/team.hpp"

namespace dsm::sas {

void ccsas_barrier(sim::ProcContext& ctx) {
  const int levels =
      bit_width_u64(static_cast<std::uint64_t>(ctx.nprocs()) - 1);
  // Tree barrier: each level is a remote line hand-off.
  ctx.rmem_ns(ctx.params().sw.barrier_hop_ns * levels);
  ctx.barrier();
}

std::uint64_t ccsas_max_reduce(sim::ProcContext& ctx, std::uint64_t value) {
  const int levels =
      bit_width_u64(static_cast<std::uint64_t>(ctx.nprocs()) - 1);
  // Tree climb + broadcast: one remote line per level each way.
  ctx.rmem_ns(2.0 * levels *
              (ctx.cost().line_rtt_ns(ctx.rank(),
                                      (ctx.rank() + 1) % ctx.nprocs()) +
               ctx.params().sw.lock_acquire_ns));
  const std::uint64_t result = ctx.team().reconcile<std::uint64_t, std::uint64_t>(
      ctx, value, [](std::span<const std::uint64_t* const> vals) {
        std::uint64_t mx = 0;
        for (const std::uint64_t* v : vals) mx = std::max(mx, *v);
        return std::vector<std::uint64_t>(vals.size(), mx);
      });
  ctx.barrier();
  return result;
}

BucketScan::BucketScan(int nprocs, std::size_t buckets)
    : nprocs_(nprocs), buckets_(buckets) {
  DSM_REQUIRE(nprocs >= 1, "BucketScan needs at least one process");
  DSM_REQUIRE(buckets >= 1, "BucketScan needs at least one bucket");
  bufs_[0].resize(static_cast<std::size_t>(nprocs) * buckets);
  bufs_[1].resize(static_cast<std::size_t>(nprocs) * buckets);
}

void BucketScan::scan(sim::ProcContext& ctx,
                      std::span<const std::uint64_t> local,
                      std::span<std::uint64_t> rank_prefix,
                      std::span<std::uint64_t> global) {
  DSM_REQUIRE(local.size() == buckets_ && rank_prefix.size() == buckets_ &&
                  global.size() == buckets_,
              "BucketScan spans must have `buckets` entries");
  DSM_REQUIRE(ctx.nprocs() == nprocs_, "team size mismatch");
  const int r = ctx.rank();
  const auto row_bytes = buckets_ * sizeof(std::uint64_t);

  int cur = 0;
  std::memcpy(row(cur, r), local.data(), row_bytes);
  ctx.stream(row_bytes, row_bytes);  // publish own row (local write)
  ccsas_barrier(ctx);

  for (int d = 1; d < nprocs_; d <<= 1) {
    const std::uint64_t* mine = row(cur, r);
    std::uint64_t* out = row(cur ^ 1, r);
    if (r >= d) {
      const std::uint64_t* partner = row(cur, r - d);
      for (std::size_t b = 0; b < buckets_; ++b) out[b] = mine[b] + partner[b];
      // One remote row streamed in per round, plus the add sweep.
      ctx.rmem_ns(ctx.cost().block_transfer_ns(r, r - d, row_bytes));
      ctx.busy_cycles(static_cast<double>(buckets_) *
                      ctx.params().cpu.scan_cycles);
      ctx.stream(2 * row_bytes, 2 * row_bytes);
    } else {
      std::memcpy(out, mine, row_bytes);
      ctx.stream(2 * row_bytes, 2 * row_bytes);
    }
    ccsas_barrier(ctx);
    cur ^= 1;
  }

  const std::uint64_t* inclusive = row(cur, r);
  for (std::size_t b = 0; b < buckets_; ++b) {
    rank_prefix[b] = inclusive[b] - local[b];
  }
  ctx.busy_cycles(static_cast<double>(buckets_) * ctx.params().cpu.scan_cycles);

  const std::uint64_t* last = row(cur, nprocs_ - 1);
  std::memcpy(global.data(), last, row_bytes);
  if (r != nprocs_ - 1) {
    ctx.rmem_ns(ctx.cost().block_transfer_ns(r, nprocs_ - 1, row_bytes));
  } else {
    ctx.stream(row_bytes, row_bytes);
  }
  // Keep the double buffers coherent for the next pass: no rank may re-run
  // scan() while another still reads the final rows.
  ccsas_barrier(ctx);
}

}  // namespace dsm::sas
