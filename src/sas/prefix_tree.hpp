// CC-SAS collectives: tree barrier cost and the parallel bucket prefix
// scan the SPLASH-2 radix sort builds its global histogram with.
//
// The paper contrasts this fine-grained load/store prefix tree (cheap
// under hardware coherence) with the allgather-based histogram exchange
// the MPI/SHMEM versions are forced into — it is why CC-SAS wins at small
// problem sizes. We implement a Hillis–Steele parallel prefix across
// processes, vectorised over all 2^r buckets, with a real shared buffer
// and a (virtual-time) barrier per round: log2(p) rounds, each reading one
// remote row of the histogram matrix.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/proc.hpp"

namespace dsm::sas {

/// Barrier under the CC-SAS model: charges the software tree-barrier cost
/// (remote line ping-pong per level) and then reconciles virtual time.
void ccsas_barrier(sim::ProcContext& ctx);

/// Tree max-reduction over one value per process (fine-grained loads up a
/// binary tree, broadcast down) — used to detect the maximum key value,
/// which bounds the number of radix passes (§3.1).
std::uint64_t ccsas_max_reduce(sim::ProcContext& ctx, std::uint64_t value);

/// Collective prefix scan over processes, per bucket.
///
/// Every process passes its local bucket histogram (`buckets` entries);
/// after the call:
///   rank_prefix[b] = sum of histograms of ranks < mine, bucket b
///   global[b]      = sum over all ranks, bucket b
/// Shared state lives in this object; construct once per team and reuse
/// across radix passes (all ranks must call scan collectively).
class BucketScan {
 public:
  BucketScan(int nprocs, std::size_t buckets);

  std::size_t buckets() const { return buckets_; }

  void scan(sim::ProcContext& ctx, std::span<const std::uint64_t> local,
            std::span<std::uint64_t> rank_prefix,
            std::span<std::uint64_t> global);

 private:
  std::uint64_t* row(int buf, int rank) {
    return bufs_[static_cast<std::size_t>(buf)].data() +
           static_cast<std::size_t>(rank) * buckets_;
  }

  int nprocs_;
  std::size_t buckets_;
  std::vector<std::uint64_t> bufs_[2];  // p x buckets each
};

}  // namespace dsm::sas
