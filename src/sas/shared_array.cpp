#include "sas/shared_array.hpp"

namespace dsm::sas {

HomeMap::HomeMap(Index n, int nprocs) : n_(n), nprocs_(nprocs) {
  DSM_REQUIRE(nprocs >= 1, "HomeMap needs at least one process");
  base_ = n / static_cast<Index>(nprocs);
  extra_ = n % static_cast<Index>(nprocs);
}

Index HomeMap::begin_of(int proc) const {
  DSM_REQUIRE(proc >= 0 && proc <= nprocs_, "proc out of range");
  const auto p = static_cast<Index>(proc);
  return p * base_ + std::min(p, extra_);
}

int HomeMap::owner_of(Index i) const {
  DSM_REQUIRE(i < n_, "element index out of range");
  // First `extra_` owners hold base_+1 elements.
  const Index big = extra_ * (base_ + 1);
  if (i < big) return static_cast<int>(i / (base_ + 1));
  DSM_CHECK(base_ > 0, "owner_of on empty tail partition");
  return static_cast<int>(extra_ + (i - big) / base_);
}

}  // namespace dsm::sas
