// The record concept: what the sort system knows about one sortable
// element beyond "a uint32_t".
//
// The paper (and PRs 1-7) sort uniform 32-bit keys. Real workloads carry
// records — a sort key plus a payload that must travel with it — and
// later backends (MSD radix over strings, external sort) need key
// extraction to be a concept, not a hardcoded type. This header supplies
// both layers of that concept:
//
//   * A *templated core*: RecordTraits<R>, following the kxsort
//     RadixTraits shape (`n_bytes`, `kth_byte`, `compare`, plus `key_of`
//     because our LSD passes are r-bit digits, not whole bytes), and
//     record_lsd_sort<Traits>() — a generic stable LSD radix sort any
//     trait instantiation gets for free. Tests pin the data-plane
//     implementations against it.
//
//   * A *type-erased boundary*: RecordType + RecordTypeInfo, the small
//     runtime dispatch SortSpec / JobSpec / the codecs carry. The
//     simulated data plane stays Key-typed (SharedArray, symmetric heaps,
//     message buffers are unchanged); a payload-bearing record adds a
//     mirrored payload lane moved host-side at every key-movement site.
//     Charged virtual time is a pure function of the key lane — the
//     record-oblivious charging contract: a kv32 sort charges exactly
//     what the u32 sort of the same key stream charges (DESIGN.md §11).
//
// Two concrete records ship end-to-end: kU32 (the existing key,
// observationally invisible) and kKeyPayload32 (u32 key + 32-bit payload
// index, permuted with the key, stability-verified).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bits.hpp"
#include "common/cli.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace dsm::keys {

enum class RecordType {
  kU32,           // bare 32-bit key (the paper's element)
  kKeyPayload32,  // 32-bit key + 32-bit payload index ("kv32")
};

inline constexpr RecordType kAllRecordTypes[] = {RecordType::kU32,
                                                 RecordType::kKeyPayload32};

/// Payload lane element type: a 32-bit index into the original input
/// (assigned at generation as the key's global position, which makes
/// stability checkable: equal keys must keep ascending payloads).
using Payload = std::uint32_t;

/// The key+payload record, SIGMOD SortRecord style but 4+4 bytes.
struct KeyPayload32 {
  Key key = 0;
  Payload payload = 0;
  friend bool operator==(const KeyPayload32&, const KeyPayload32&) = default;
};

/// Radix traits over a record type — the kxsort RadixTraits shape.
/// Specializations provide:
///   n_bytes      — key bytes a byte-wise MSD/LSD sort would consume
///   has_payload  — whether the record carries bytes beyond the key
///   kth_byte     — k-th least-significant key byte
///   compare      — strict weak order on records (key order)
///   key_of       — the radix key (our LSD passes use r-bit digits of it)
template <typename R>
struct RecordTraits;

template <>
struct RecordTraits<Key> {
  using record_type = Key;
  static constexpr int n_bytes = 4;
  static constexpr bool has_payload = false;
  static int kth_byte(const Key& x, int k) {
    return static_cast<int>((x >> (8 * k)) & 0xff);
  }
  static bool compare(const Key& a, const Key& b) { return a < b; }
  static Key key_of(const Key& x) { return x; }
};

template <>
struct RecordTraits<KeyPayload32> {
  using record_type = KeyPayload32;
  static constexpr int n_bytes = 4;  // the payload is carried, not sorted on
  static constexpr bool has_payload = true;
  static int kth_byte(const KeyPayload32& x, int k) {
    return static_cast<int>((x.key >> (8 * k)) & 0xff);
  }
  static bool compare(const KeyPayload32& a, const KeyPayload32& b) {
    return a.key < b.key;
  }
  static Key key_of(const KeyPayload32& x) { return x.key; }
};

/// Type-erased record description for the SortSpec / wire boundary.
struct RecordTypeInfo {
  RecordType type = RecordType::kU32;
  const char* name = "u32";
  std::size_t width_bytes = sizeof(Key);  // bytes moved per record
  bool has_payload = false;
};

/// Canonical registry table (see common/cli.hpp). Wire names are part of
/// the journal/cluster format: never rename an entry.
inline constexpr EnumEntry<RecordType> kRecordTypeNames[] = {
    {RecordType::kU32, "u32"},
    {RecordType::kKeyPayload32, "kv32"},
};

const RecordTypeInfo& record_info(RecordType t);
const char* record_name(RecordType t);
/// Typed inverse of record_name: kInvalidArgument on an unknown name.
Result<RecordType> record_from_name(const std::string& name);

/// Strict full-string parse behind DSMSORT_RECORD, exported so tests can
/// exercise the error path without setenv: exactly a registry name,
/// anything else (case drift, whitespace, trailing garbage) throws Error
/// naming the variable and the accepted values.
RecordType parse_record_env(const char* text);

/// Process-wide default record type: DSMSORT_RECORD when set (parsed
/// once, strictly), else kU32. CLI overrides (--record) install theirs
/// via set_default_record_type.
RecordType default_record_type();
void set_default_record_type(RecordType t);

/// Generic stable LSD radix sort over any RecordTraits instantiation —
/// the templated core of the record concept. Sorts `recs` ascending by
/// Traits::key_of using `tmp` (same size) as the toggle buffer; the
/// result always ends in `recs`. Deliberately simple (one histogram pass
/// per digit, direct scatter): this is the semantic reference the
/// kernel-layer data plane is tested against, and the extension point a
/// new record type starts from before it earns a mirrored fast path.
template <typename Traits>
void record_lsd_sort(std::span<typename Traits::record_type> recs,
                     std::span<typename Traits::record_type> tmp,
                     int radix_bits) {
  using R = typename Traits::record_type;
  DSM_REQUIRE(radix_bits >= 1 && radix_bits <= 20, "radix bits out of range");
  DSM_REQUIRE(tmp.size() >= recs.size(), "tmp must be at least as large");
  const int passes = static_cast<int>(
      ceil_div(kKeyBits, static_cast<std::uint64_t>(radix_bits)));
  const std::size_t buckets = std::size_t{1} << radix_bits;
  const std::size_t n = recs.size();
  std::vector<std::uint64_t> hist(buckets);
  R* in = recs.data();
  R* out = tmp.data();
  for (int pass = 0; pass < passes; ++pass) {
    std::fill(hist.begin(), hist.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      ++hist[radix_digit(Traits::key_of(in[i]), pass, radix_bits)];
    }
    std::uint64_t acc = 0;
    for (std::size_t b = 0; b < buckets; ++b) {
      const std::uint64_t c = hist[b];
      hist[b] = acc;
      acc += c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      out[hist[radix_digit(Traits::key_of(in[i]), pass, radix_bits)]++] =
          in[i];
    }
    std::swap(in, out);
  }
  if (in != recs.data()) {
    std::copy_n(in, n, recs.data());
  }
}

}  // namespace dsm::keys
