// The eight key-initialisation methods of §3.3 of the paper.
//
// All generators fill one process's partition deterministically from
// (seed, rank), so a p-process data set is reproducible and can be
// generated in parallel. `gauss` reproduces the exact NAS/SPLASH-2
// recurrence (x_{k+1} = 513 x_k mod 2^46) with jump-ahead so the global
// key stream is identical regardless of p.
//
// `remote` and `local` are parameterised by the radix size r and process
// count p, exactly as the paper defines them: they shape each r-bit digit
// so the radix permutation moves, respectively, all keys to other
// processes every pass, or no keys at all.
// Beyond the paper's eight, four skewed distributions open the workload
// axis the paper could not study (its finding 5 predicts distribution
// only matters past L2 capacity): Zipf-popular keys, duplicate-heavy
// small domains, nearly-sorted inputs, and an adversarial
// nearly-all-equal stream that starves every high radix digit and
// stresses sample sort's splitter tie-breaking. All four are stateless
// per global index — deterministic per rank and identical for every
// partitioning, like `random`.
#pragma once

#include <span>
#include <string>

#include "common/cli.hpp"
#include "common/types.hpp"

namespace dsm::keys {

enum class Dist {
  kGauss,    // NAS/SPLASH-2 default: average of 4 LCG draws
  kRandom,   // uniform in [0, 2^31)
  kZero,     // random, but every tenth key is 0
  kBucket,   // p^2 blocks cycling through the p value ranges
  kStagger,  // staggered block permutation of the value ranges
  kHalf,     // gauss restricted to even keys
  kRemote,   // maximal key movement every radix pass
  kLocal,    // no key movement in any radix pass
  // --- skewed workloads beyond the paper (finding-5 probes) ---
  kZipf,         // Zipf(1)-popular hot set of 1024 scattered values
  kDup,          // duplicate-heavy: 64 distinct values total
  kAlmostSorted, // ascending ramp with ~1/64 random displacements
  kAdversarial,  // ~94% one hot value; rest differ in the low byte only
};

/// The paper's §3.3 set. Figure sweeps, the service trace generator, and
/// the paper-facing tables iterate exactly these eight — the skewed
/// additions live in kSkewDists so historical outputs stay byte-identical.
inline constexpr Dist kAllDists[] = {Dist::kGauss,  Dist::kRandom,
                                     Dist::kZero,   Dist::kBucket,
                                     Dist::kStagger, Dist::kHalf,
                                     Dist::kRemote, Dist::kLocal};

/// The post-paper skew axis (ROADMAP item 2).
inline constexpr Dist kSkewDists[] = {Dist::kZipf, Dist::kDup,
                                      Dist::kAlmostSorted,
                                      Dist::kAdversarial};

/// Canonical registry table (see common/cli.hpp): every distribution,
/// paper and skewed. Wire names are part of the journal format.
inline constexpr EnumEntry<Dist> kDistNames[] = {
    {Dist::kGauss, "gauss"},       {Dist::kRandom, "random"},
    {Dist::kZero, "zero"},         {Dist::kBucket, "bucket"},
    {Dist::kStagger, "stagger"},   {Dist::kHalf, "half"},
    {Dist::kRemote, "remote"},     {Dist::kLocal, "local"},
    {Dist::kZipf, "zipf"},         {Dist::kDup, "dup"},
    {Dist::kAlmostSorted, "almost-sorted"},
    {Dist::kAdversarial, "adversarial"},
};

const char* dist_name(Dist d);

/// Parse "gauss", "random", ... (throws on unknown name).
Dist dist_from_name(const std::string& name);

/// Typed parse for the v2 surface (--dist flags, codecs): kInvalidArgument
/// listing the accepted names on failure.
Result<Dist> try_dist_from_name(const std::string& name);

/// Parameters a generator needs beyond the output span.
struct GenSpec {
  Index n_total = 0;       // global key count
  Index global_begin = 0;  // global index of out[0]
  int rank = 0;            // owning process
  int nprocs = 1;
  int radix_bits = 8;      // r — used by kRemote / kLocal
  std::uint64_t seed = 1;  // base seed; gauss uses the NAS seed internally
};

/// Fill `out` (= the rank's partition) with keys of distribution `d`.
void generate(Dist d, std::span<Key> out, const GenSpec& spec);

}  // namespace dsm::keys
