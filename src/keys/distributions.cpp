#include "keys/distributions.hpp"

#include <cmath>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"

namespace dsm::keys {
namespace {

/// Stateless per-key uniform value in [0, 2^31): makes random/zero data
/// independent of how the key array is partitioned, so the sequential
/// baseline sorts exactly the same keys as any parallel run.
Key stateless_u31(std::uint64_t seed, Index global_index) {
  SplitMix64 g(seed ^ (global_index * 0x9e3779b97f4a7c15ull));
  return static_cast<Key>(g.next() >> 33);  // top 31 bits
}

void gen_gauss(std::span<Key> out, const GenSpec& spec, bool force_even) {
  // NAS IS / SPLASH-2: each key is the average of four consecutive draws
  // of x_{k+1} = 513 x_k mod 2^46. Jump-ahead keeps the global stream
  // independent of the partitioning.
  NasLcg46 lcg(NasLcg46::kDefaultSeed ^ (spec.seed == 1 ? 0 : spec.seed));
  lcg.jump(4 * spec.global_begin);
  for (Key& k : out) {
    std::uint64_t sum = 0;
    for (int i = 0; i < 4; ++i) sum += lcg.next();
    // Average of values in [0, 2^46), scaled to [0, 2^31).
    k = static_cast<Key>((sum >> 2) >> (46 - kKeyBits));
    if (force_even) k &= ~Key{1};
  }
}

void gen_random(std::span<Key> out, const GenSpec& spec, bool zero_tenth) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Index gi = spec.global_begin + i;
    out[i] = (zero_tenth && gi % 10 == 0) ? 0 : stateless_u31(spec.seed, gi);
  }
}

void gen_bucket(std::span<Key> out, const GenSpec& spec) {
  // The first n/p^2 elements at each process are random in [0, MAX/p),
  // the second n/p^2 in [MAX/p, 2 MAX/p), and so on, cycling.
  const auto p = static_cast<std::uint64_t>(spec.nprocs);
  const std::uint64_t per_proc = spec.n_total / p;
  const std::uint64_t block = std::max<std::uint64_t>(1, per_proc / p);
  const std::uint64_t range = kKeyMax / p;
  SplitMix64 g(mix_seed(spec.seed, static_cast<std::uint64_t>(spec.rank)));
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t slot = (static_cast<std::uint64_t>(i) / block) % p;
    const std::uint64_t lo = slot * range;
    out[i] = static_cast<Key>(g.next_in(lo, lo + range));
  }
}

void gen_stagger(std::span<Key> out, const GenSpec& spec) {
  // Process i draws from range (2i+1) if i < p/2, else range (2i - p)
  // (unit = MAX/p) — a fixed staggered permutation of the value ranges.
  const auto p = static_cast<std::uint64_t>(spec.nprocs);
  const auto i = static_cast<std::uint64_t>(spec.rank);
  const std::uint64_t range = kKeyMax / p;
  const std::uint64_t slot = i < p / 2 ? (2 * i + 1) % p : (2 * i - p) % p;
  const std::uint64_t lo = slot * range;
  SplitMix64 g(mix_seed(spec.seed, i));
  for (Key& k : out) k = static_cast<Key>(g.next_in(lo, lo + range));
}

/// Stateless uniform double in [0, 1) from the same generator family.
double stateless_unit(std::uint64_t seed, Index global_index) {
  SplitMix64 g(seed ^ (global_index * 0x9e3779b97f4a7c15ull) ^
               0xc2b2ae3d27d4eb4full);
  return static_cast<double>(g.next() >> 11) * 0x1.0p-53;
}

/// Zipf(1)-popular keys: a hot set of kZipfHotSet values whose ranks are
/// drawn by inverting the harmonic CDF (P(rank <= i) ~ ln(i+1)/ln(N+1)),
/// so rank 0 alone carries ~10% of the keys. The hot values themselves
/// are scattered pseudo-randomly over [0, 2^31) so the skew is in the
/// *frequencies*, not the value range — every radix digit still sees
/// duplicates pile up.
constexpr std::uint64_t kZipfHotSet = 1024;

Key zipf_value_of(std::uint64_t seed, std::uint64_t rank) {
  return stateless_u31(seed ^ 0x5a17f00ddead10ccull, rank);
}

void gen_zipf(std::span<Key> out, const GenSpec& spec) {
  const double ln_n1 = std::log(static_cast<double>(kZipfHotSet + 1));
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Index gi = spec.global_begin + i;
    const double u = stateless_unit(spec.seed, gi);
    const auto rank = static_cast<std::uint64_t>(
        std::exp(u * ln_n1)) - 1;  // in [0, kZipfHotSet)
    out[i] = zipf_value_of(spec.seed,
                           rank >= kZipfHotSet ? kZipfHotSet - 1 : rank);
  }
}

/// Duplicate-heavy: 64 distinct values total, uniformly popular. With
/// n >> 64 every radix bucket that is hit at all is hit massively — the
/// regime where splitter tie-breaking and run-length charging matter.
constexpr std::uint64_t kDupDomain = 64;

void gen_dup(std::span<Key> out, const GenSpec& spec) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Index gi = spec.global_begin + i;
    const std::uint64_t slot =
        stateless_u31(spec.seed ^ 0xd0bb1e5ull, gi) % kDupDomain;
    out[i] = zipf_value_of(spec.seed, slot);
  }
}

/// Nearly sorted: the global stream is an ascending ramp over the full
/// value range with ~1/64 of positions displaced to random values —
/// radix passes move almost nothing, comparison phases see long runs.
void gen_almost_sorted(std::span<Key> out, const GenSpec& spec) {
  const std::uint64_t denom =
      spec.n_total > 1 ? spec.n_total - 1 : std::uint64_t{1};
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Index gi = spec.global_begin + i;
    if (stateless_u31(spec.seed ^ 0xa15037edull, gi) % 64 == 0) {
      out[i] = stateless_u31(spec.seed, gi);
    } else {
      out[i] = static_cast<Key>((static_cast<std::uint64_t>(gi) *
                                 (kKeyMax - 1)) / denom);
    }
  }
}

/// Adversarial: ~94% of keys are one hot value; the rest differ from it
/// only in the low byte. Every digit above the first radix pass is
/// single-valued (all high passes are dead), the global histogram is
/// maximally imbalanced, and sample sort's splitters are forced into the
/// duplicate tie-break path — the worst case finding 5 asks about.
void gen_adversarial(std::span<Key> out, const GenSpec& spec) {
  const Key hot = stateless_u31(spec.seed ^ 0xadbeefull, 0) | 0x100;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Index gi = spec.global_begin + i;
    const std::uint64_t h = stateless_u31(spec.seed ^ 0xfacadeull, gi);
    out[i] = (h % 16 != 0) ? hot
                           : (hot & ~Key{0xff}) |
                                 static_cast<Key>((h >> 8) & 0xff);
  }
}

void gen_remote_local(std::span<Key> out, const GenSpec& spec, bool local) {
  const int r = spec.radix_bits;
  const std::uint64_t digits = std::uint64_t{1} << r;
  const auto p = static_cast<std::uint64_t>(spec.nprocs);
  DSM_REQUIRE(digits >= p,
              "remote/local distributions need 2^radix >= nprocs");
  const auto i = static_cast<std::uint64_t>(spec.rank);
  const std::uint64_t lo = i * digits / p;
  const std::uint64_t hi = (i + 1) * digits / p;
  SplitMix64 g(mix_seed(spec.seed, i));
  const Key mask = static_cast<Key>(kKeyMax - 1);
  for (Key& k : out) {
    // d_own lies in this process's digit sub-range; d_other avoids it.
    const auto d_own = static_cast<Key>(g.next_in(lo, hi));
    Key d_other = d_own;
    // With one process there is nowhere else to send keys; `remote`
    // degenerates to `local` (the paper only defines it for p > 1).
    if (!local && digits > hi - lo) {
      const std::uint64_t excluded = hi - lo;
      const std::uint64_t v = g.next_below(digits - excluded);
      d_other = static_cast<Key>(v < lo ? v : v + excluded);
    }
    // local: every digit is d_own (keys never leave the process).
    // remote: even digits avoid the sub-range (pass k sends the key away),
    // odd digits return it home — "the third r bits are the same as the
    // first r bits, the fourth the same as the second, and so forth".
    std::uint64_t key = 0;
    for (int shift = 0, idx = 0; shift < kKeyBits; shift += r, ++idx) {
      const Key d = local ? d_own : (idx % 2 == 0 ? d_other : d_own);
      key |= static_cast<std::uint64_t>(d) << shift;
    }
    k = static_cast<Key>(key) & mask;
  }
}

}  // namespace

const char* dist_name(Dist d) { return enum_name<Dist>(kDistNames, d); }

Dist dist_from_name(const std::string& name) {
  return enum_from_name_or_throw<Dist>(kDistNames, name, "distribution");
}

Result<Dist> try_dist_from_name(const std::string& name) {
  return enum_from_name<Dist>(kDistNames, name, "distribution");
}

void generate(Dist d, std::span<Key> out, const GenSpec& spec) {
  DSM_REQUIRE(spec.nprocs >= 1, "nprocs >= 1");
  DSM_REQUIRE(spec.rank >= 0 && spec.rank < spec.nprocs, "rank in range");
  DSM_REQUIRE(spec.global_begin + out.size() <= spec.n_total,
              "partition exceeds the global key count");
  DSM_REQUIRE(spec.radix_bits >= 1 && spec.radix_bits <= 20,
              "radix bits out of range");
  switch (d) {
    case Dist::kGauss: gen_gauss(out, spec, /*force_even=*/false); return;
    case Dist::kHalf: gen_gauss(out, spec, /*force_even=*/true); return;
    case Dist::kRandom: gen_random(out, spec, /*zero_tenth=*/false); return;
    case Dist::kZero: gen_random(out, spec, /*zero_tenth=*/true); return;
    case Dist::kBucket: gen_bucket(out, spec); return;
    case Dist::kStagger: gen_stagger(out, spec); return;
    case Dist::kRemote: gen_remote_local(out, spec, /*local=*/false); return;
    case Dist::kLocal: gen_remote_local(out, spec, /*local=*/true); return;
    case Dist::kZipf: gen_zipf(out, spec); return;
    case Dist::kDup: gen_dup(out, spec); return;
    case Dist::kAlmostSorted: gen_almost_sorted(out, spec); return;
    case Dist::kAdversarial: gen_adversarial(out, spec); return;
  }
  throw Error("unhandled distribution");
}

}  // namespace dsm::keys
