#include "keys/distributions.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/prng.hpp"

namespace dsm::keys {
namespace {

/// Stateless per-key uniform value in [0, 2^31): makes random/zero data
/// independent of how the key array is partitioned, so the sequential
/// baseline sorts exactly the same keys as any parallel run.
Key stateless_u31(std::uint64_t seed, Index global_index) {
  SplitMix64 g(seed ^ (global_index * 0x9e3779b97f4a7c15ull));
  return static_cast<Key>(g.next() >> 33);  // top 31 bits
}

void gen_gauss(std::span<Key> out, const GenSpec& spec, bool force_even) {
  // NAS IS / SPLASH-2: each key is the average of four consecutive draws
  // of x_{k+1} = 513 x_k mod 2^46. Jump-ahead keeps the global stream
  // independent of the partitioning.
  NasLcg46 lcg(NasLcg46::kDefaultSeed ^ (spec.seed == 1 ? 0 : spec.seed));
  lcg.jump(4 * spec.global_begin);
  for (Key& k : out) {
    std::uint64_t sum = 0;
    for (int i = 0; i < 4; ++i) sum += lcg.next();
    // Average of values in [0, 2^46), scaled to [0, 2^31).
    k = static_cast<Key>((sum >> 2) >> (46 - kKeyBits));
    if (force_even) k &= ~Key{1};
  }
}

void gen_random(std::span<Key> out, const GenSpec& spec, bool zero_tenth) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Index gi = spec.global_begin + i;
    out[i] = (zero_tenth && gi % 10 == 0) ? 0 : stateless_u31(spec.seed, gi);
  }
}

void gen_bucket(std::span<Key> out, const GenSpec& spec) {
  // The first n/p^2 elements at each process are random in [0, MAX/p),
  // the second n/p^2 in [MAX/p, 2 MAX/p), and so on, cycling.
  const auto p = static_cast<std::uint64_t>(spec.nprocs);
  const std::uint64_t per_proc = spec.n_total / p;
  const std::uint64_t block = std::max<std::uint64_t>(1, per_proc / p);
  const std::uint64_t range = kKeyMax / p;
  SplitMix64 g(mix_seed(spec.seed, static_cast<std::uint64_t>(spec.rank)));
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t slot = (static_cast<std::uint64_t>(i) / block) % p;
    const std::uint64_t lo = slot * range;
    out[i] = static_cast<Key>(g.next_in(lo, lo + range));
  }
}

void gen_stagger(std::span<Key> out, const GenSpec& spec) {
  // Process i draws from range (2i+1) if i < p/2, else range (2i - p)
  // (unit = MAX/p) — a fixed staggered permutation of the value ranges.
  const auto p = static_cast<std::uint64_t>(spec.nprocs);
  const auto i = static_cast<std::uint64_t>(spec.rank);
  const std::uint64_t range = kKeyMax / p;
  const std::uint64_t slot = i < p / 2 ? (2 * i + 1) % p : (2 * i - p) % p;
  const std::uint64_t lo = slot * range;
  SplitMix64 g(mix_seed(spec.seed, i));
  for (Key& k : out) k = static_cast<Key>(g.next_in(lo, lo + range));
}

void gen_remote_local(std::span<Key> out, const GenSpec& spec, bool local) {
  const int r = spec.radix_bits;
  const std::uint64_t digits = std::uint64_t{1} << r;
  const auto p = static_cast<std::uint64_t>(spec.nprocs);
  DSM_REQUIRE(digits >= p,
              "remote/local distributions need 2^radix >= nprocs");
  const auto i = static_cast<std::uint64_t>(spec.rank);
  const std::uint64_t lo = i * digits / p;
  const std::uint64_t hi = (i + 1) * digits / p;
  SplitMix64 g(mix_seed(spec.seed, i));
  const Key mask = static_cast<Key>(kKeyMax - 1);
  for (Key& k : out) {
    // d_own lies in this process's digit sub-range; d_other avoids it.
    const auto d_own = static_cast<Key>(g.next_in(lo, hi));
    Key d_other = d_own;
    // With one process there is nowhere else to send keys; `remote`
    // degenerates to `local` (the paper only defines it for p > 1).
    if (!local && digits > hi - lo) {
      const std::uint64_t excluded = hi - lo;
      const std::uint64_t v = g.next_below(digits - excluded);
      d_other = static_cast<Key>(v < lo ? v : v + excluded);
    }
    // local: every digit is d_own (keys never leave the process).
    // remote: even digits avoid the sub-range (pass k sends the key away),
    // odd digits return it home — "the third r bits are the same as the
    // first r bits, the fourth the same as the second, and so forth".
    std::uint64_t key = 0;
    for (int shift = 0, idx = 0; shift < kKeyBits; shift += r, ++idx) {
      const Key d = local ? d_own : (idx % 2 == 0 ? d_other : d_own);
      key |= static_cast<std::uint64_t>(d) << shift;
    }
    k = static_cast<Key>(key) & mask;
  }
}

}  // namespace

const char* dist_name(Dist d) {
  switch (d) {
    case Dist::kGauss: return "gauss";
    case Dist::kRandom: return "random";
    case Dist::kZero: return "zero";
    case Dist::kBucket: return "bucket";
    case Dist::kStagger: return "stagger";
    case Dist::kHalf: return "half";
    case Dist::kRemote: return "remote";
    case Dist::kLocal: return "local";
  }
  return "?";
}

Dist dist_from_name(const std::string& name) {
  for (Dist d : kAllDists) {
    if (name == dist_name(d)) return d;
  }
  throw Error("unknown distribution: " + name);
}

void generate(Dist d, std::span<Key> out, const GenSpec& spec) {
  DSM_REQUIRE(spec.nprocs >= 1, "nprocs >= 1");
  DSM_REQUIRE(spec.rank >= 0 && spec.rank < spec.nprocs, "rank in range");
  DSM_REQUIRE(spec.global_begin + out.size() <= spec.n_total,
              "partition exceeds the global key count");
  DSM_REQUIRE(spec.radix_bits >= 1 && spec.radix_bits <= 20,
              "radix bits out of range");
  switch (d) {
    case Dist::kGauss: gen_gauss(out, spec, /*force_even=*/false); return;
    case Dist::kHalf: gen_gauss(out, spec, /*force_even=*/true); return;
    case Dist::kRandom: gen_random(out, spec, /*zero_tenth=*/false); return;
    case Dist::kZero: gen_random(out, spec, /*zero_tenth=*/true); return;
    case Dist::kBucket: gen_bucket(out, spec); return;
    case Dist::kStagger: gen_stagger(out, spec); return;
    case Dist::kRemote: gen_remote_local(out, spec, /*local=*/false); return;
    case Dist::kLocal: gen_remote_local(out, spec, /*local=*/true); return;
  }
  throw Error("unhandled distribution");
}

}  // namespace dsm::keys
