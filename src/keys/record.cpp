#include "keys/record.hpp"

#include <atomic>
#include <cstdlib>

#include "common/error.hpp"

namespace dsm::keys {
namespace {

constexpr RecordTypeInfo kInfos[] = {
    {RecordType::kU32, "u32", sizeof(Key), false},
    {RecordType::kKeyPayload32, "kv32", sizeof(Key) + sizeof(Payload), true},
};

/// -1 = not yet resolved; otherwise the RecordType as an int.
std::atomic<int> g_default_record{-1};

}  // namespace

const RecordTypeInfo& record_info(RecordType t) {
  for (const RecordTypeInfo& i : kInfos) {
    if (i.type == t) return i;
  }
  throw Error("unregistered record type");
}

const char* record_name(RecordType t) {
  return enum_name<RecordType>(kRecordTypeNames, t);
}

Result<RecordType> record_from_name(const std::string& name) {
  return enum_from_name<RecordType>(kRecordTypeNames, name, "record type");
}

RecordType parse_record_env(const char* text) {
  if (text == nullptr) return RecordType::kU32;
  Result<RecordType> r = record_from_name(text);
  if (!r.ok()) {
    throw Error("DSMSORT_RECORD: " + r.status().message());
  }
  return r.value();
}

RecordType default_record_type() {
  const int cached = g_default_record.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<RecordType>(cached);
  const RecordType t = parse_record_env(std::getenv("DSMSORT_RECORD"));
  g_default_record.store(static_cast<int>(t), std::memory_order_relaxed);
  return t;
}

void set_default_record_type(RecordType t) {
  g_default_record.store(static_cast<int>(t), std::memory_order_relaxed);
}

}  // namespace dsm::keys
