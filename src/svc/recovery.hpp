// Crash-recovery scan for the sort service's durability directory.
//
// recover_dir() is a pure read pass: it loads the snapshot (if any),
// replays the journal suffix into the caller's Planner and Metrics, and
// returns what the service must do next — which jobs to re-admit, which
// to quarantine, and where the LSN / seq counters resume. It never
// writes; the SortService constructor owns the side effects (journaling
// quarantine records, restoring the queue, appending the quarantine
// file), so a crash *during recovery itself* just repeats the same scan.
//
// Replay rules:
//  - Snapshot state is authoritative up to snapshot.lsn; journal records
//    below that LSN are skipped.
//  - A terminal record replays the job's completion: metrics counters,
//    per-site fault counts from its embedded attempt history, and the
//    planner EWMA observation — in LSN order, which equals the original
//    observation order. A job with a terminal record is never re-run.
//  - A job with journal activity but no terminal was in flight when the
//    process died. If it had begun processing (planned / attempt records
//    after its last admission), the crash is charged to it: its crash
//    count increments when it died at the same site as last time (resets
//    to 1 at a new site), and hitting the threshold quarantines it.
//    Jobs still sitting in the queue are bystanders — re-admitted with no
//    crash charged.
//  - Damage is tolerated, not fatal: a torn record at a segment tail is
//    the expected crash scar (its effects were never acknowledged); a
//    CRC-corrupt record stops the scan of that segment and is surfaced
//    through Metrics as kCorruptJournal. A corrupt snapshot falls back to
//    replaying the full journal from LSN 0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "svc/job.hpp"
#include "svc/metrics.hpp"
#include "svc/planner.hpp"

namespace dsm::svc {

/// File names inside a durability directory.
std::string snapshot_path(const std::string& dir);
std::string quarantine_path(const std::string& dir);

struct RecoveryReport {
  bool performed = false;        // found a snapshot or journal records
  bool snapshot_loaded = false;
  bool snapshot_corrupt = false;  // present but damaged; full replay used
  std::uint64_t journal_records = 0;  // valid records replayed
  std::uint64_t torn_tails = 0;
  std::uint64_t corrupt_records = 0;
  std::uint64_t replayed_terminal = 0;  // finished jobs replayed, not re-run
  std::uint64_t requeued = 0;
  std::uint64_t quarantined = 0;  // newly quarantined by this recovery
  double recovery_host_ms = 0;    // stamped by the service constructor

  std::string to_json() const;
};

/// A job refused re-admission because it kept killing the process.
struct QuarantineEntry {
  JobSpec job;
  int crash_count = 0;
  std::string crash_site;
  /// Human-readable journal history of the job ("lsn=12 attempt-start 1",
  /// "lsn=13 mark keygen", ...), preserved in the quarantine file.
  std::vector<std::string> history;
};

struct RecoveryOutcome {
  RecoveryReport report;
  /// Jobs to re-admit, sorted by svc_seq; crash bookkeeping and any
  /// journaled plan already threaded into each spec.
  std::vector<JobSpec> requeue;
  /// Jobs newly crossing the quarantine threshold this recovery. The
  /// caller journals + records them.
  std::vector<QuarantineEntry> quarantine;
  /// Every job id ever admitted (duplicate-submit filter).
  std::vector<std::uint64_t> known_ids;
  std::uint64_t next_lsn = 0;
  std::uint64_t next_seq = 0;
};

/// Scan `dir` and replay into `planner` / `metrics` (mutated only when
/// there is state to recover). `quarantine_threshold` is the number of
/// same-site crashes that quarantines a job.
RecoveryOutcome recover_dir(const std::string& dir, int quarantine_threshold,
                            Planner& planner, Metrics& metrics);

}  // namespace dsm::svc
