// Shared text codec for the service's durable and wire formats.
//
// The journal (svc/journal) and the cluster wire protocol (cluster/frame)
// frame records the same way — [u32 len][u32 crc32]payload with a text
// payload — and serialize the same domain values: plans, attempt records,
// full job specs. This header is the single definition of those field
// runs, so a JobSpec journaled at admission and a JobSpec shipped to a
// worker over a socket are byte-identical field-for-field, and a change
// to one format cannot silently diverge from the other.
//
// Byte-compatibility contract: put_* must keep emitting exactly the bytes
// the PR 4 journal emitted (existing journals must keep decoding), so
// every emitted field run begins with a single leading space — callers
// compose runs by plain concatenation after the record header.
#pragma once

#include <sstream>

#include "svc/job.hpp"
#include "svc/wire.hpp"

namespace dsm::svc::codec {

/// " <algo> <model> <radix> <raw> <pred> <has_runner>[ <runner fields>]"
void put_plan(std::ostringstream& os, const Plan& p);
Plan get_plan(wire::Parser& p);

/// " <error netstr> <retryable> <backoff> <fault_site>"
void put_attempt(std::ostringstream& os, const AttemptRecord& a);
AttemptRecord get_attempt(wire::Parser& p);

/// Every client-visible JobSpec field plus crash bookkeeping, in the PR 4
/// kAdmit order (id first; svc_seq is NOT encoded — it travels in the
/// record header and the caller restores it after get_job).
void put_job(std::ostringstream& os, const JobSpec& j);
JobSpec get_job(wire::Parser& p);

}  // namespace dsm::svc::codec
