#include "svc/job.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "perf/report.hpp"

namespace dsm::svc {

sort::SortSpec sort_spec_for(const JobSpec& job, sort::Algo algo,
                             sort::Model model, int radix_bits) {
  sort::SortSpec spec;
  spec.algo = algo;
  spec.model = model;
  spec.nprocs = job.nprocs;
  spec.n = job.n;
  spec.radix_bits = radix_bits;
  spec.dist = job.dist;
  spec.seed = job.seed;
  spec.record = job.record;  // never inherit the process default here:
                             // replay must execute the journaled type
  spec.trace_json_path = job.trace_json_path;
  return spec;
}

Status JobSpec::validate_status() const {
  std::string problems;
  const auto add = [&](const std::string& p) {
    if (!problems.empty()) problems += "; ";
    problems += p;
  };
  if (n < 1) add("job needs at least one key");
  if (nprocs < 1 || nprocs > 1024) add("job nprocs in [1, 1024]");
  if (n >= 1 && nprocs >= 1 && n < static_cast<Index>(nprocs)) {
    add("job needs at least one key per process");
  }
  if (seed == 0) add("job seed must be nonzero");
  if (priority < 0) add("job priority must be >= 0");
  if (keys::record_info(record).has_payload && n > (Index{1} << 32)) {
    add("record '" + std::string(keys::record_name(record)) +
        "' carries a 32-bit payload index; n must be <= 2^32");
  }
  if (problems.empty()) return Status();
  return Status::invalid_argument("invalid job " + std::to_string(id) + ": " +
                                  problems);
}

void JobSpec::validate() const {
  const Status s = validate_status();
  if (!s.ok()) throw StatusError(s);
}

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kShed: return "shed";
    case JobStatus::kDeadlineMiss: return "deadline-miss";
  }
  return "?";
}

JobStatus job_status_from_name(const std::string& name) {
  for (const JobStatus s : {JobStatus::kOk, JobStatus::kFailed,
                            JobStatus::kShed, JobStatus::kDeadlineMiss}) {
    if (name == job_status_name(s)) return s;
  }
  throw Error("unknown job status: " + name);
}

std::string Plan::to_json() const {
  std::ostringstream os;
  os << "{\"algo\": \"" << sort::algo_name(algo) << "\", \"model\": \""
     << sort::model_name(model) << "\", \"radix_bits\": " << radix_bits
     << ", \"predicted_raw_us\": " << fmt_fixed(predicted_raw_ns / 1e3, 3)
     << ", \"predicted_us\": " << fmt_fixed(predicted_ns / 1e3, 3);
  if (has_runner_up) {
    os << ", \"runner_up\": {\"algo\": \"" << sort::algo_name(runner_algo)
       << "\", \"model\": \"" << sort::model_name(runner_model)
       << "\", \"radix_bits\": " << runner_radix_bits
       << ", \"predicted_us\": " << fmt_fixed(runner_predicted_ns / 1e3, 3)
       << "}";
  }
  os << "}";
  return os.str();
}

std::string JobResult::to_json(bool include_host) const {
  std::ostringstream os;
  os << "{\"id\": " << id << ", \"status\": \"" << job_status_name(status)
     << "\"";
  const bool ran = status == JobStatus::kOk || status == JobStatus::kDeadlineMiss;
  if (!ran) {
    os << ", \"error\": \"" << perf::json_escape(error) << "\""
       << ", \"code\": \"" << status_code_name(final_status.code()) << "\"";
    if (status == JobStatus::kShed) {
      // The plan existed (shedding is a planner-informed decision).
      os << ", \"plan\": " << plan.to_json();
    }
  } else {
    os << ", \"plan\": " << plan.to_json()
       << ", \"measured_us\": " << fmt_fixed(measured_ns / 1e3, 3)
       << ", \"passes\": " << passes
       << ", \"verified\": " << (verified ? "true" : "false");
    if (status == JobStatus::kDeadlineMiss) {
      os << ", \"error\": \"" << perf::json_escape(error) << "\"";
    }
    if (audited) {
      os << ", \"runner_measured_us\": "
         << fmt_fixed(runner_measured_ns / 1e3, 3)
         << ", \"plan_hit\": " << (plan_hit ? "true" : "false");
    }
  }
  if (!attempts.empty()) {
    os << ", \"attempts\": [";
    for (std::size_t i = 0; i < attempts.size(); ++i) {
      const AttemptRecord& a = attempts[i];
      os << (i ? ", " : "") << "{\"error\": \"" << perf::json_escape(a.error)
         << "\", \"retryable\": " << (a.retryable ? "true" : "false")
         << ", \"backoff_ms\": " << fmt_fixed(a.backoff_ms, 3) << "}";
    }
    os << "]";
  }
  if (include_host) {
    os << ", \"host_latency_ms\": " << fmt_fixed(host_latency_ms, 3);
  }
  os << "}";
  return os.str();
}

}  // namespace dsm::svc
