#include "svc/job.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/table.hpp"
#include "perf/report.hpp"

namespace dsm::svc {

void JobSpec::validate() const {
  DSM_REQUIRE(n >= 1, "job needs at least one key");
  DSM_REQUIRE(nprocs >= 1 && nprocs <= 1024, "job nprocs in [1, 1024]");
  DSM_REQUIRE(n >= static_cast<Index>(nprocs),
              "job needs at least one key per process");
  DSM_REQUIRE(seed != 0, "job seed must be nonzero");
}

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kFailed: return "failed";
  }
  return "?";
}

std::string Plan::to_json() const {
  std::ostringstream os;
  os << "{\"algo\": \"" << sort::algo_name(algo) << "\", \"model\": \""
     << sort::model_name(model) << "\", \"radix_bits\": " << radix_bits
     << ", \"predicted_raw_us\": " << fmt_fixed(predicted_raw_ns / 1e3, 3)
     << ", \"predicted_us\": " << fmt_fixed(predicted_ns / 1e3, 3);
  if (has_runner_up) {
    os << ", \"runner_up\": {\"algo\": \"" << sort::algo_name(runner_algo)
       << "\", \"model\": \"" << sort::model_name(runner_model)
       << "\", \"radix_bits\": " << runner_radix_bits
       << ", \"predicted_us\": " << fmt_fixed(runner_predicted_ns / 1e3, 3)
       << "}";
  }
  os << "}";
  return os.str();
}

std::string JobResult::to_json(bool include_host) const {
  std::ostringstream os;
  os << "{\"id\": " << id << ", \"status\": \"" << job_status_name(status)
     << "\"";
  if (status == JobStatus::kFailed) {
    os << ", \"error\": \"" << perf::json_escape(error) << "\"";
  } else {
    os << ", \"plan\": " << plan.to_json()
       << ", \"measured_us\": " << fmt_fixed(measured_ns / 1e3, 3)
       << ", \"passes\": " << passes
       << ", \"verified\": " << (verified ? "true" : "false");
    if (audited) {
      os << ", \"runner_measured_us\": "
         << fmt_fixed(runner_measured_ns / 1e3, 3)
         << ", \"plan_hit\": " << (plan_hit ? "true" : "false");
    }
  }
  if (include_host) {
    os << ", \"host_latency_ms\": " << fmt_fixed(host_latency_ms, 3);
  }
  os << "}";
  return os.str();
}

}  // namespace dsm::svc
