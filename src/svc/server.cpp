#include "svc/server.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <exception>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/prng.hpp"
#include "common/table.hpp"
#include "sas/shared_array.hpp"
#include "sim/sweep.hpp"
#include "sort/input_cache.hpp"
#include "svc/snapshot.hpp"

namespace dsm::svc {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Durable append of one line (the quarantine file). Best-effort: the
/// journal's quarantine record is the authoritative copy.
void append_line_durable(const std::string& path, const std::string& line) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
}

std::string us_text(double ns) { return fmt_fixed(ns / 1e3, 3) + "us"; }

/// The master-side expectation for end-to-end integrity (DESIGN.md §12):
/// regenerate the job's input into a scratch buffer (usually an input-
/// cache hit — the worker sorts the identical stream) and fingerprint it.
/// Keygen depends on (dist, n, nprocs, radix_bits, seed) only, never on
/// the algorithm, so the same helper serves primary and audit plans.
sort::Checksum expected_input_checksum(const JobSpec& job, int radix_bits) {
  const sas::HomeMap homes(job.n, job.nprocs);
  std::vector<Key> scratch(static_cast<std::size_t>(job.n));
  return sort::generate_partitions_cached(
      job.dist, job.n, job.nprocs, radix_bits, job.seed, homes, [&](int r) {
        return std::span<Key>(scratch.data() + homes.begin_of(r),
                              static_cast<std::size_t>(homes.count_of(r)));
      });
}

}  // namespace

SortService::SortService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(cfg_.queue_capacity),
      injector_(cfg_.faults),
      planner_(cfg_.planner) {
  DSM_REQUIRE(cfg_.max_batch >= 1, "max_batch >= 1");
  DSM_REQUIRE(cfg_.max_batch <= cfg_.queue_capacity,
              "max_batch must fit in the queue (replay feeds full batches)");
  DSM_REQUIRE(cfg_.max_attempts >= 1, "max_attempts >= 1");
  DSM_REQUIRE(cfg_.retry_backoff_base_ms >= 0 &&
                  cfg_.retry_backoff_cap_ms >= cfg_.retry_backoff_base_ms,
              "retry backoff cap must be >= base >= 0");
  DSM_REQUIRE(!durable() || cfg_.workers == 1,
              "durability requires workers == 1 (snapshots between batches "
              "must cover every in-flight job)");
  if (cfg_.remote != nullptr) {
    // Hand the remote tier our metrics registry plus the knobs every
    // dispatched task must carry, so a worker-side run is configured
    // exactly like a local one.
    cfg_.remote->bind_service(&metrics_, cfg_.faults,
                              cfg_.input_cache_budget_bytes);
  }
  if (durable()) recover();
}

void SortService::recover() {
  const double t0 = now_s();
  RecoveryOutcome rec =
      recover_dir(cfg_.durability.dir, cfg_.durability.quarantine_threshold,
                  planner_, metrics_);
  known_ids_.insert(rec.known_ids.begin(), rec.known_ids.end());
  queue_.set_next_seq(rec.next_seq);

  JournalConfig jc;
  jc.dir = cfg_.durability.dir;
  jc.fsync_data = cfg_.durability.fsync_data;
  jc.segment_max_bytes = cfg_.durability.segment_max_bytes;
  jc.crash_hook = cfg_.durability.crash_hook;
  journal_ = std::make_unique<JournalWriter>(jc, rec.next_lsn);

  for (QuarantineEntry& q : rec.quarantine) quarantine_job(std::move(q));
  for (JobSpec& j : rec.requeue) {
    // The re-admission record carries the accumulated crash bookkeeping
    // and the pre-crash plan, so they survive the *next* crash too. If we
    // die before restoring the queue, the next recovery recomputes the
    // same re-admission from this record — idempotent.
    JournalRecord r;
    r.type = RecordType::kAdmit;
    r.seq = j.svc_seq;
    r.job = j;
    r.readmit = true;
    journal_->append(r);
    queue_.restore(std::move(j));
  }
  recovery_report_ = rec.report;
  recovery_report_.recovery_host_ms = (now_s() - t0) * 1e3;
}

void SortService::quarantine_job(QuarantineEntry entry) {
  const std::string msg =
      "job " + std::to_string(entry.job.id) +
      " quarantined: crashed the process " +
      std::to_string(entry.crash_count) + "x at " + entry.crash_site;

  JournalRecord quar;
  quar.type = RecordType::kQuarantine;
  quar.seq = entry.job.svc_seq;
  quar.job = entry.job;
  quar.crash_count = entry.crash_count;
  quar.site = entry.crash_site;
  journal_->append(quar);

  JobResult res;
  res.id = entry.job.id;
  res.status = JobStatus::kFailed;
  res.final_status = Status::quarantined(msg);
  res.error = msg;
  if (entry.job.recovered_plan) res.plan = *entry.job.recovered_plan;
  JournalRecord term;
  term.type = RecordType::kTerminal;
  term.seq = entry.job.svc_seq;
  term.result = res;
  journal_->append(term);

  metrics_.on_complete(res);

  std::ostringstream line;
  line << "{\"id\": " << entry.job.id << ", \"seq\": " << entry.job.svc_seq
       << ", \"crash_count\": " << entry.crash_count << ", \"crash_site\": \""
       << json_escape(entry.crash_site) << "\", \"history\": [";
  for (std::size_t i = 0; i < entry.history.size(); ++i) {
    line << (i ? ", " : "") << "\"" << json_escape(entry.history[i]) << "\"";
  }
  line << "]}\n";
  append_line_durable(quarantine_path(cfg_.durability.dir), line.str());

  const std::lock_guard<std::mutex> lock(results_mu_);
  results_.push_back(std::move(res));
}

void SortService::write_checkpoint() {
  SnapshotData s;
  {
    // Capture and rotate atomically against durable admissions: the new
    // segment starts exactly at the snapshot LSN, so every older segment
    // holds only records the snapshot covers and is safe to prune.
    const std::lock_guard<std::mutex> lock(durable_mu_);
    s.lsn = journal_->next_lsn();
    s.next_seq = queue_.next_seq();
    s.inflight = queue_.snapshot_jobs();
    s.planner_cells = planner_.export_cells();
    s.metrics = metrics_.export_state();
    s.known_ids.assign(known_ids_.begin(), known_ids_.end());
    std::sort(s.known_ids.begin(), s.known_ids.end());
    journal_->rotate();
  }
  const Status st = write_snapshot(snapshot_path(cfg_.durability.dir), s,
                                   cfg_.durability.crash_hook);
  if (!st.ok()) {
    // Journal remains authoritative; retry next round. Counted so the
    // chaos bench can see checkpointing degrade without losing state.
    metrics_.on_snapshot_failure();
    return;
  }
  if (!cfg_.durability.keep_all_segments) {
    prune_segments(cfg_.durability.dir, s.lsn);
  }
  metrics_.on_snapshot();
  batches_since_snapshot_ = 0;
}

SortService::~SortService() { drain(); }

void SortService::start() {
  DSM_REQUIRE(!started_, "service already started");
  DSM_REQUIRE(!queue_.closed(), "service already drained");
  started_ = true;
  server_ = std::thread([this] { server_loop(); });
}

Admission SortService::submit(JobSpec job, Status* why) {
  Admission a;
  bool counted = false;
  const Status invalid = job.validate_status();
  if (!invalid.ok()) {
    a = Admission::kRejectedInvalid;
  } else if (injector_.should_fire(FaultSite::kQueueAdmission, job.id,
                                   /*attempt=*/0)) {
    // A flaky front end: the client sees a retryable rejection and may
    // resubmit; the service never saw the job, so nothing is retried
    // internally.
    metrics_.on_fault(FaultSite::kQueueAdmission);
    a = Admission::kRejectedFault;
  } else {
    job.host_submit_s = now_s();
    if (durable()) {
      // Serialized against checkpoint capture; see durable_mu_. The
      // admit record is fsynced before the client sees kAccepted — an
      // accepted job is never lost to a crash.
      const std::lock_guard<std::mutex> lock(durable_mu_);
      if (known_ids_.count(job.id) != 0) {
        // Idempotent resubmission (e.g. a client blindly replaying its
        // trace after our crash): the job's fate is already owned by the
        // journal; never run it twice.
        a = Admission::kRejectedDuplicate;
      } else {
        std::uint64_t seq = 0;
        a = queue_.try_submit(job, &seq);
        if (a == Admission::kAccepted) {
          known_ids_.insert(job.id);
          JournalRecord r;
          r.type = RecordType::kAdmit;
          r.seq = seq;
          job.svc_seq = seq;
          r.job = std::move(job);
          journal_->append(r);
          metrics_.on_admission(a);
          counted = true;
        }
      }
    } else {
      a = queue_.try_submit(std::move(job));
    }
  }
  if (why != nullptr) *why = invalid.ok() ? admission_status(a) : invalid;
  if (!counted) metrics_.on_admission(a);
  return a;
}

void SortService::drain() {
  if (drained_) return;  // idempotent: the first drain did all the work
  queue_.close();
  if (server_.joinable()) {
    server_.join();
  } else {
    // Never started (or replay-only use): drain whatever was admitted
    // inline, so drain() always leaves the queue empty.
    server_loop();
  }
  if (durable()) write_checkpoint();  // final checkpoint + segment prune
  drained_ = true;
}

std::vector<JobResult> SortService::take_results() {
  const std::lock_guard<std::mutex> lock(results_mu_);
  return std::exchange(results_, {});
}

std::vector<JobResult> SortService::replay(
    const std::vector<JobSpec>& trace) {
  DSM_REQUIRE(!started_, "replay requires a service not running live");
  DSM_REQUIRE(!queue_.closed(), "service already drained");
  DSM_REQUIRE(!durable(),
              "replay bypasses admission journaling; durable services use "
              "submit + drain");
  std::vector<JobSpec> batch;
  for (std::size_t begin = 0; begin < trace.size();
       begin += cfg_.max_batch) {
    const std::size_t end =
        std::min(trace.size(), begin + cfg_.max_batch);
    // Feed the round through the real queue path (capacity >= max_batch
    // by construction, so nothing is rejected), then pop and process it —
    // the exact live-mode round, at fixed batch geometry. Admission
    // faults are deliberately not replayed: a trace is the *admitted*
    // stream, and a job rejected at the front end never entered it.
    for (std::size_t i = begin; i < end; ++i) {
      const Admission a = queue_.try_submit(trace[i]);
      metrics_.on_admission(a);
      DSM_CHECK(a == Admission::kAccepted, "replay submit rejected");
    }
    batch.clear();
    const std::size_t got = queue_.pop_batch(cfg_.max_batch, batch);
    DSM_CHECK(got == end - begin, "replay round popped short");
    metrics_.note_queue_depth(queue_.high_water());
    process_batch(batch);
  }
  return take_results();
}

void SortService::server_loop() {
  std::vector<JobSpec> batch;
  for (;;) {
    batch.clear();
    const std::size_t got = queue_.pop_batch(cfg_.max_batch, batch);
    if (got == 0) return;  // closed and drained
    metrics_.note_queue_depth(queue_.high_water());
    process_batch(batch);
  }
}

double SortService::backoff_ms_for(const JobSpec& job, int attempt) const {
  const double exp =
      cfg_.retry_backoff_base_ms *
      static_cast<double>(std::uint64_t{1} << std::min(attempt, 20));
  const double capped = std::min(cfg_.retry_backoff_cap_ms, exp);
  // Seeded jitter in [0.5, 1.0]: decorrelates retry storms across jobs
  // while keeping the recorded backoff values replayable.
  SplitMix64 rng(mix_seed(mix_seed(cfg_.faults.seed, job.seed),
                          mix_seed(job.id, static_cast<std::uint64_t>(
                                               attempt))));
  const double u = static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  return capped * (0.5 + 0.5 * u);
}

void SortService::plan_one(const JobSpec& job, JobResult& out,
                           std::optional<Plan>& plan) {
  for (int attempt = 0;; ++attempt) {
    Status failure;
    int fired_site = -1;
    if (injector_.should_fire(FaultSite::kPlannerCalibration, job.id,
                              attempt)) {
      metrics_.on_fault(FaultSite::kPlannerCalibration);
      fired_site = static_cast<int>(FaultSite::kPlannerCalibration);
      failure =
          FaultInjector::fire(FaultSite::kPlannerCalibration, job.id, attempt);
    } else {
      Result<Plan> r = planner_.try_plan(job);
      if (r.ok()) {
        plan = std::move(r).value();
        out.plan = *plan;
        return;
      }
      failure = r.status();
    }
    if (failure.retryable() && attempt + 1 < cfg_.max_attempts) {
      // Planning is host-cheap; record the backoff but never sleep for it.
      out.attempts.push_back(AttemptRecord{failure.to_string(), true,
                                           backoff_ms_for(job, attempt),
                                           fired_site});
      continue;
    }
    out.status = JobStatus::kFailed;
    out.final_status = failure;
    out.error = failure.message();
    out.final_fault_site = fired_site;
    return;
  }
}

void SortService::process_batch(std::vector<JobSpec>& batch) {
  const std::size_t count = batch.size();
  std::vector<JobResult> results(count);
  std::vector<std::optional<Plan>> plans(count);

  // Plan sequentially against one calibration snapshot: plans depend only
  // on admission order and batch geometry, not on the worker count.
  for (std::size_t i = 0; i < count; ++i) {
    results[i].id = batch[i].id;
    if (batch[i].recovered_plan.has_value()) {
      // Execute exactly the plan a pre-crash incarnation journaled:
      // re-planning could see calibration state the original plan
      // pre-dated and drift from the uncrashed run.
      plans[i] = batch[i].recovered_plan;
      results[i].plan = *plans[i];
    } else {
      plan_one(batch[i], results[i], plans[i]);
      if (durable() && plans[i].has_value()) {
        JournalRecord r;
        r.type = RecordType::kPlanned;
        r.seq = batch[i].svc_seq;
        r.plan = *plans[i];
        journal_->append(r);
      }
    }

    // Predicted-cost load shedding: if even the calibrated estimate blows
    // the deadline, refuse to burn the machine time. Critical jobs are
    // exempt and take their chances.
    if (plans[i].has_value() && batch[i].deadline_us > 0 &&
        batch[i].priority < kCriticalPriority) {
      const double deadline_ns =
          static_cast<double>(batch[i].deadline_us) * 1e3;
      if (plans[i]->predicted_ns > deadline_ns) {
        results[i].status = JobStatus::kShed;
        results[i].final_status = Status::deadline_exceeded(
            "shed: predicted " + us_text(plans[i]->predicted_ns) +
            " > deadline " + us_text(deadline_ns));
        results[i].error = results[i].final_status.message();
        plans[i].reset();  // keep the plan in the result, skip execution
      }
    }
  }

  if (cfg_.remote != nullptr) {
    // Batch-boundary elasticity signal: the pool may resize here (and
    // only here), so the worker-process count never changes mid-batch.
    double predicted_ns = 0;
    for (const auto& p : plans) {
      if (p.has_value()) predicted_ns += p->predicted_ns;
    }
    cfg_.remote->note_batch(count, predicted_ns, queue_.depth());
  }

  // Execute concurrently; every cell only writes its own slot and never
  // throws (failures are recorded in the slot), so one poisoned job
  // cannot take down the round. The per-job index is the admission seq —
  // stable across crash recovery, and identical to the old running count
  // for an uncrashed service (accepted jobs number densely from 0).
  sim::run_indexed(count, cfg_.workers, [&](std::size_t i) {
    if (cfg_.input_cache_budget_bytes != 0) {
      sort::input_cache_set_budget(cfg_.input_cache_budget_bytes);
    }
    if (!plans[i].has_value()) return;  // failed at planning, or shed
    execute_one(batch[i], *plans[i], batch[i].svc_seq, results[i]);
  });

  // Observe and record in batch order — deterministic calibration. Only
  // jobs that actually ran carry a measurement worth folding in. The
  // terminal record is journaled *before* the in-memory state changes
  // (write-ahead): a crash in between replays the observation from the
  // journal.
  for (std::size_t i = 0; i < count; ++i) {
    if (durable()) {
      JournalRecord r;
      r.type = RecordType::kTerminal;
      r.seq = batch[i].svc_seq;
      r.result = results[i];
      journal_->append(r);
    }
    if ((results[i].status == JobStatus::kOk ||
         results[i].status == JobStatus::kDeadlineMiss) &&
        results[i].measured_ns > 0) {
      planner_.observe(results[i].plan, results[i].measured_ns);
    }
    metrics_.on_complete(results[i]);
  }

  {
    const std::lock_guard<std::mutex> lock(results_mu_);
    results_.insert(results_.end(),
                    std::make_move_iterator(results.begin()),
                    std::make_move_iterator(results.end()));
  }

  if (durable()) {
    // Disk-health poll (DESIGN.md §12): if the journal dropped records
    // this batch, the batch's jobs completed but their records never
    // became durable — keep serving, surface the degradation in Metrics.
    const std::uint64_t dropped = journal_->records_dropped();
    if (dropped > journal_dropped_seen_) {
      metrics_.on_degraded_append(dropped - journal_dropped_seen_);
      metrics_.on_non_durable_jobs(count);
      journal_dropped_seen_ = dropped;
    }
    const std::uint64_t heals = journal_->heals();
    for (; journal_heals_seen_ < heals; ++journal_heals_seen_) {
      metrics_.on_durability_heal();
    }
    ++batches_since_snapshot_;
    if (cfg_.durability.snapshot_every_batches > 0 &&
        batches_since_snapshot_ >= cfg_.durability.snapshot_every_batches) {
      write_checkpoint();
    }
  }
}

void SortService::execute_one(const JobSpec& job, const Plan& plan,
                              std::uint64_t seq, JobResult& out) {
  const double deadline_ns = static_cast<double>(job.deadline_us) * 1e3;
  const bool abortable =
      job.deadline_us > 0 && job.priority < kCriticalPriority;

  for (int attempt = 0;; ++attempt) {
    if (durable()) {
      JournalRecord r;
      r.type = RecordType::kAttemptStart;
      r.seq = seq;
      r.attempt = attempt;
      journal_->append(r);
    }
    int fired_site = -1;
    bool attempt_ok = false;
    double measured_ns = 0;
    int passes = 0;
    bool verified = false;
    Status failure;

    if (cfg_.remote != nullptr) {
      // Cluster mode: ship the attempt to a worker process. The worker
      // mirrors exactly the local hook body below (marks, faults,
      // virtual-deadline abort) from the same FaultConfig, so the
      // outcome is byte-identical; journaling and the crash hook stay
      // here, on the mark callbacks the worker streams back.
      RemoteAttempt ra;
      ra.job = job;
      ra.plan = plan;
      ra.attempt = attempt;
      if (cfg_.verify_remote_integrity) {
        ra.check_integrity = true;
        ra.expect = expected_input_checksum(job, plan.radix_bits);
      }
      const auto on_mark = [this, seq](const char* site, double) {
        if (durable() && cfg_.durability.journal_marks) {
          JournalRecord m;
          m.type = RecordType::kMark;
          m.seq = seq;
          m.site = site;
          journal_->append(m);
        }
        if (durable() && cfg_.durability.crash_hook) {
          cfg_.durability.crash_hook(
              (std::string("exec.") + site).c_str(), seq);
        }
      };
      const auto on_dispatch = [this, seq, attempt](const std::string& w) {
        if (!durable()) return;
        // WAL the dispatch before the task leaves the master: a crash
        // right after the send still knows this attempt may have reached
        // worker `w`, and recovery re-drives it like a started attempt.
        JournalRecord d;
        d.type = RecordType::kDispatch;
        d.seq = seq;
        d.attempt = attempt;
        d.site = w;
        journal_->append(d);
      };
      const RemoteOutcome ro =
          cfg_.remote->run_attempt(ra, on_mark, on_dispatch);
      if (ro.fired_site >= 0) {
        // The fault fired worker-side (same injector, same seed); its
        // counter lives in this process.
        metrics_.on_fault(static_cast<FaultSite>(ro.fired_site));
        fired_site = ro.fired_site;
      }
      if (ro.ran && ro.ok) {
        attempt_ok = true;
        measured_ns = ro.measured_ns;
        passes = ro.passes;
        verified = ro.verified;
      } else {
        failure = ro.failure;
      }
    } else {
      sort::SortSpec spec =
          sort_spec_for(job, plan.algo, plan.model, plan.radix_bits);
      spec.hooks.on_site = [this, id = job.id, attempt, deadline_ns,
                            abortable, seq, &fired_site](
                               const char* site, double virtual_ns) {
        if (durable() && cfg_.durability.journal_marks) {
          // Progress mark: pins a crash during this phase to the precise
          // "execute:<site>" identity quarantine counting keys on.
          JournalRecord m;
          m.type = RecordType::kMark;
          m.seq = seq;
          m.site = site;
          journal_->append(m);
        }
        if (durable() && cfg_.durability.crash_hook) {
          cfg_.durability.crash_hook(
              (std::string("exec.") + site).c_str(), seq);
        }
        const bool keygen = std::strcmp(site, "keygen") == 0;
        const FaultSite fsite =
            keygen ? FaultSite::kKeygen : FaultSite::kSortPhase;
        const std::uint64_t salt = keygen ? 0 : fault_salt(site);
        if (injector_.should_fire(fsite, id, attempt, salt)) {
          metrics_.on_fault(fsite);
          fired_site = static_cast<int>(fsite);
          throw StatusError(FaultInjector::fire(fsite, id, attempt));
        }
        // Cooperative straggler abort: virtual time already past the
        // deadline at a phase boundary means the job cannot finish in
        // budget; unwind now instead of finishing late.
        if (abortable && virtual_ns > deadline_ns) {
          throw StatusError(Status::deadline_exceeded(
              std::string("virtual deadline exceeded at '") + site +
              "': " + us_text(virtual_ns) + " > " + us_text(deadline_ns)));
        }
      };

      Result<sort::SortResult> r = sort::try_run_sort(spec);
      if (r.ok()) {
        attempt_ok = true;
        measured_ns = r->elapsed_ns;
        passes = r->passes;
        verified = r->verified;
      } else {
        failure = r.status();
      }
    }

    if (attempt_ok) {
      if (injector_.should_fire(FaultSite::kSerialize, job.id, attempt)) {
        // The sort finished but its result was lost on the way out; the
        // whole attempt must rerun. (Serialization is a master-side step,
        // so this fires here even in cluster mode.)
        metrics_.on_fault(FaultSite::kSerialize);
        fired_site = static_cast<int>(FaultSite::kSerialize);
        failure = FaultInjector::fire(FaultSite::kSerialize, job.id, attempt);
      } else {
        out.measured_ns = measured_ns;
        out.passes = passes;
        out.verified = verified;
        if (job.deadline_us > 0 && measured_ns > deadline_ns) {
          out.status = JobStatus::kDeadlineMiss;
          out.final_status = Status::deadline_exceeded(
              "finished late: measured " + us_text(measured_ns) +
              " > deadline " + us_text(deadline_ns));
          out.error = out.final_status.message();
        }
        break;  // job ran to completion (on time or late)
      }
    } else if (failure.code() == StatusCode::kDeadlineExceeded) {
      // Mid-run abort: the job ran and missed; rerunning cannot help.
      out.status = JobStatus::kDeadlineMiss;
      out.final_status = failure;
      out.error = failure.message();
      return;
    }

    if (failure.retryable() && attempt + 1 < cfg_.max_attempts) {
      const double back = backoff_ms_for(job, attempt);
      out.attempts.push_back(
          AttemptRecord{failure.to_string(), true, back, fired_site});
      if (durable()) {
        JournalRecord ar;
        ar.type = RecordType::kAttemptResult;
        ar.seq = seq;
        ar.attempt = attempt;
        ar.attempt_result = out.attempts.back();
        journal_->append(ar);
      }
      if (job.host_submit_s > 0) {
        // Live mode only: replay must not depend on host sleeping.
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(back));
      }
      continue;
    }
    out.status = JobStatus::kFailed;
    out.final_status = failure;
    out.error = failure.message();
    out.final_fault_site = fired_site;
    return;
  }

  if (out.status == JobStatus::kOk && cfg_.audit_every != 0 &&
      seq % cfg_.audit_every == 0 && plan.has_runner_up) {
    out.audited = true;
    if (cfg_.remote != nullptr) {
      // Audit the runner-up on a worker process too (the master never
      // sorts in cluster mode). Audit dispatches are not journaled: an
      // audit is re-derivable from the terminal record and re-running it
      // after a crash costs one sort, not correctness.
      RemoteAttempt ra;
      ra.job = job;
      ra.plan = plan;
      ra.plan.algo = plan.runner_algo;
      ra.plan.model = plan.runner_model;
      ra.plan.radix_bits = plan.runner_radix_bits;
      ra.audit = true;
      if (cfg_.verify_remote_integrity) {
        ra.check_integrity = true;
        ra.expect = expected_input_checksum(job, plan.runner_radix_bits);
      }
      const RemoteOutcome ro = cfg_.remote->run_attempt(ra, nullptr, nullptr);
      if (ro.ran && ro.ok) {
        out.runner_measured_ns = ro.measured_ns;
        out.plan_hit = out.measured_ns <= out.runner_measured_ns;
      } else {
        // The runner-up itself is infeasible: the planner's choice
        // stands (exactly the local catch path below).
        out.runner_measured_ns = -1;
        out.plan_hit = true;
      }
    } else {
      try {
        sort::SortSpec rs = sort_spec_for(job, plan.runner_algo,
                                          plan.runner_model,
                                          plan.runner_radix_bits);
        rs.trace_json_path.clear();  // audit runs are not traced
        // Audit runs carry no hooks: no faults, no deadline — they
        // measure the runner-up plan, not the failure machinery.
        out.runner_measured_ns = sort::run_sort(rs).elapsed_ns;
        out.plan_hit = out.measured_ns <= out.runner_measured_ns;
      } catch (const std::exception&) {
        // The runner-up itself is infeasible: the planner's choice stands.
        out.runner_measured_ns = -1;
        out.plan_hit = true;
      }
    }
  }
  if (job.host_submit_s > 0) {
    out.host_latency_ms = (now_s() - job.host_submit_s) * 1e3;
  }
}

}  // namespace dsm::svc
