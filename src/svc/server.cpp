#include "svc/server.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "sim/sweep.hpp"
#include "sort/input_cache.hpp"

namespace dsm::svc {
namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

sort::SortSpec spec_for(const JobSpec& job, sort::Algo algo,
                        sort::Model model, int radix_bits) {
  sort::SortSpec spec;
  spec.algo = algo;
  spec.model = model;
  spec.nprocs = job.nprocs;
  spec.n = job.n;
  spec.radix_bits = radix_bits;
  spec.dist = job.dist;
  spec.seed = job.seed;
  spec.trace_json_path = job.trace_json_path;
  return spec;
}

}  // namespace

SortService::SortService(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(cfg_.queue_capacity),
      planner_(cfg_.planner) {
  DSM_REQUIRE(cfg_.max_batch >= 1, "max_batch >= 1");
  DSM_REQUIRE(cfg_.max_batch <= cfg_.queue_capacity,
              "max_batch must fit in the queue (replay feeds full batches)");
}

SortService::~SortService() { drain(); }

void SortService::start() {
  DSM_REQUIRE(!started_, "service already started");
  DSM_REQUIRE(!queue_.closed(), "service already drained");
  started_ = true;
  server_ = std::thread([this] { server_loop(); });
}

Admission SortService::submit(JobSpec job) {
  Admission a;
  try {
    job.validate();
    job.host_submit_s = now_s();
    a = queue_.try_submit(std::move(job));
  } catch (const Error&) {
    a = Admission::kRejectedInvalid;
  }
  metrics_.on_admission(a);
  return a;
}

void SortService::drain() {
  queue_.close();
  if (server_.joinable()) {
    server_.join();
  } else {
    // Never started (or replay-only use): drain whatever was admitted
    // inline, so drain() always leaves the queue empty.
    server_loop();
  }
}

std::vector<JobResult> SortService::take_results() {
  const std::lock_guard<std::mutex> lock(results_mu_);
  return std::exchange(results_, {});
}

std::vector<JobResult> SortService::replay(
    const std::vector<JobSpec>& trace) {
  DSM_REQUIRE(!started_, "replay requires a service not running live");
  DSM_REQUIRE(!queue_.closed(), "service already drained");
  std::vector<JobSpec> batch;
  for (std::size_t begin = 0; begin < trace.size();
       begin += cfg_.max_batch) {
    const std::size_t end =
        std::min(trace.size(), begin + cfg_.max_batch);
    // Feed the round through the real admission path (capacity >=
    // max_batch by construction, so nothing is rejected), then pop and
    // process it — the exact live-mode round, at fixed batch geometry.
    for (std::size_t i = begin; i < end; ++i) {
      const Admission a = queue_.try_submit(trace[i]);
      metrics_.on_admission(a);
      DSM_CHECK(a == Admission::kAccepted, "replay submit rejected");
    }
    batch.clear();
    const std::size_t got = queue_.pop_batch(cfg_.max_batch, batch);
    DSM_CHECK(got == end - begin, "replay round popped short");
    metrics_.note_queue_depth(queue_.high_water());
    process_batch(batch);
  }
  return take_results();
}

void SortService::server_loop() {
  std::vector<JobSpec> batch;
  for (;;) {
    batch.clear();
    const std::size_t got = queue_.pop_batch(cfg_.max_batch, batch);
    if (got == 0) return;  // closed and drained
    metrics_.note_queue_depth(queue_.high_water());
    process_batch(batch);
  }
}

void SortService::process_batch(std::vector<JobSpec>& batch) {
  const std::size_t count = batch.size();
  std::vector<JobResult> results(count);
  std::vector<std::optional<Plan>> plans(count);

  // Plan sequentially against one calibration snapshot: plans depend only
  // on admission order and batch geometry, not on the worker count.
  for (std::size_t i = 0; i < count; ++i) {
    results[i].id = batch[i].id;
    try {
      plans[i] = planner_.plan(batch[i]);
      results[i].plan = *plans[i];
    } catch (const std::exception& e) {
      results[i].status = JobStatus::kFailed;
      results[i].error = e.what();
    }
  }

  // Execute concurrently; every cell only writes its own slot and never
  // throws (failures are recorded in the slot), so one poisoned job
  // cannot take down the round.
  const std::uint64_t base_seq = processed_;
  sim::run_indexed(count, cfg_.workers, [&](std::size_t i) {
    if (cfg_.input_cache_budget_bytes != 0) {
      sort::input_cache_set_budget(cfg_.input_cache_budget_bytes);
    }
    if (!plans[i].has_value()) return;  // failed at planning
    execute_one(batch[i], *plans[i], base_seq + i, results[i]);
  });

  // Observe and record in batch order — deterministic calibration.
  for (std::size_t i = 0; i < count; ++i) {
    if (results[i].status == JobStatus::kOk) {
      planner_.observe(results[i].plan, results[i].measured_ns);
    }
    metrics_.on_complete(results[i]);
  }
  processed_ += count;

  const std::lock_guard<std::mutex> lock(results_mu_);
  results_.insert(results_.end(),
                  std::make_move_iterator(results.begin()),
                  std::make_move_iterator(results.end()));
}

void SortService::execute_one(const JobSpec& job, const Plan& plan,
                              std::uint64_t seq, JobResult& out) const {
  try {
    const sort::SortResult r =
        sort::run_sort(spec_for(job, plan.algo, plan.model, plan.radix_bits));
    out.measured_ns = r.elapsed_ns;
    out.passes = r.passes;
    out.verified = r.verified;

    if (cfg_.audit_every != 0 && seq % cfg_.audit_every == 0 &&
        plan.has_runner_up) {
      out.audited = true;
      try {
        sort::SortSpec rs = spec_for(job, plan.runner_algo, plan.runner_model,
                                     plan.runner_radix_bits);
        rs.trace_json_path.clear();  // audit runs are not traced
        out.runner_measured_ns = sort::run_sort(rs).elapsed_ns;
        out.plan_hit = out.measured_ns <= out.runner_measured_ns;
      } catch (const std::exception&) {
        // The runner-up itself is infeasible: the planner's choice stands.
        out.runner_measured_ns = -1;
        out.plan_hit = true;
      }
    }
  } catch (const std::exception& e) {
    out.status = JobStatus::kFailed;
    out.error = e.what();
    return;
  }
  if (job.host_submit_s > 0) {
    out.host_latency_ms = (now_s() - job.host_submit_s) * 1e3;
  }
}

}  // namespace dsm::svc
