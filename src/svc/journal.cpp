#include "svc/journal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fsio.hpp"
#include "svc/codec.hpp"
#include "svc/wire.hpp"

namespace dsm::svc {
namespace {

using codec::get_attempt;
using codec::get_plan;
using codec::put_attempt;
using codec::put_plan;
using wire::dbl;
using wire::get_u32le;
using wire::kMaxRecordBytes;
using wire::netstr;
using wire::Parser;
using wire::put_u32le;

StatusCode status_code_from_name(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(StatusCode::kInternal); ++i) {
    const auto c = static_cast<StatusCode>(i);
    if (name == status_code_name(c)) return c;
  }
  throw StatusError(Status::corrupt_journal("unknown status code: " + name));
}

std::string segment_name(std::uint64_t first_lsn) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "journal-%012llu.wal",
                static_cast<unsigned long long>(first_lsn));
  return buf;
}

/// First LSN encoded in a segment file name, or false when the name is
/// not a segment.
bool parse_segment_name(const std::string& name, std::uint64_t* lsn) {
  constexpr const char kPrefix[] = "journal-";
  constexpr const char kSuffix[] = ".wal";
  if (name.size() <= sizeof(kPrefix) - 1 + sizeof(kSuffix) - 1) return false;
  if (name.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return false;
  if (name.compare(name.size() - (sizeof(kSuffix) - 1), sizeof(kSuffix) - 1,
                   kSuffix) != 0) {
    return false;
  }
  const std::string digits = name.substr(
      sizeof(kPrefix) - 1,
      name.size() - (sizeof(kPrefix) - 1) - (sizeof(kSuffix) - 1));
  if (digits.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *lsn = v;
  return true;
}

void ensure_dir(const std::string& dir) {
  // mkdir -p: create each component, tolerating ones that already exist.
  std::string partial;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t slash = dir.find('/', pos);
    const std::size_t end = slash == std::string::npos ? dir.size() : slash;
    partial = dir.substr(0, end);
    pos = end + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      throw StatusError(Status::io_error("mkdir " + partial + ": " +
                                         std::strerror(errno)));
    }
    if (slash == std::string::npos) break;
  }
}

}  // namespace

const char* record_type_name(RecordType t) {
  switch (t) {
    case RecordType::kAdmit: return "admit";
    case RecordType::kPlanned: return "planned";
    case RecordType::kAttemptStart: return "attempt-start";
    case RecordType::kMark: return "mark";
    case RecordType::kAttemptResult: return "attempt-result";
    case RecordType::kTerminal: return "terminal";
    case RecordType::kQuarantine: return "quarantine";
    case RecordType::kDispatch: return "dispatch";
  }
  return "?";
}

RecordType record_type_from_name(const std::string& name) {
  for (int i = 0; i < kRecordTypeCount; ++i) {
    const auto t = static_cast<RecordType>(i);
    if (name == record_type_name(t)) return t;
  }
  throw StatusError(Status::corrupt_journal("unknown record type: " + name));
}

std::string encode_record(const JournalRecord& r) {
  std::ostringstream os;
  os << r.lsn << ' ' << record_type_name(r.type) << ' ' << r.seq;
  switch (r.type) {
    case RecordType::kAdmit:
      os << ' ' << (r.readmit ? 1 : 0);
      codec::put_job(os, r.job);
      break;
    case RecordType::kPlanned:
      put_plan(os, r.plan);
      break;
    case RecordType::kAttemptStart:
      os << ' ' << r.attempt;
      break;
    case RecordType::kMark:
      os << ' ' << netstr(r.site);
      break;
    case RecordType::kAttemptResult:
      os << ' ' << r.attempt;
      put_attempt(os, r.attempt_result);
      break;
    case RecordType::kTerminal: {
      const JobResult& jr = r.result;
      os << ' ' << jr.id << ' ' << job_status_name(jr.status) << ' '
         << netstr(jr.error) << ' '
         << status_code_name(jr.final_status.code()) << ' '
         << netstr(jr.final_status.message()) << ' '
         << (jr.final_status.retryable() ? 1 : 0) << ' '
         << dbl(jr.measured_ns) << ' ' << jr.passes << ' '
         << (jr.verified ? 1 : 0) << ' ' << (jr.audited ? 1 : 0) << ' '
         << dbl(jr.runner_measured_ns) << ' ' << (jr.plan_hit ? 1 : 0) << ' '
         << jr.final_fault_site;
      put_plan(os, jr.plan);
      os << ' ' << jr.attempts.size();
      for (const AttemptRecord& a : jr.attempts) put_attempt(os, a);
      break;
    }
    case RecordType::kQuarantine:
      os << ' ' << r.job.id << ' ' << r.crash_count << ' ' << netstr(r.site);
      break;
    case RecordType::kDispatch:
      os << ' ' << r.attempt << ' ' << netstr(r.site);
      break;
  }
  return os.str();
}

JournalRecord decode_record(const std::string& payload) {
  Parser p(payload);
  JournalRecord r;
  r.lsn = p.u64();
  r.type = record_type_from_name(p.tok());
  r.seq = p.u64();
  switch (r.type) {
    case RecordType::kAdmit:
      r.readmit = p.b();
      r.job = codec::get_job(p);
      r.job.svc_seq = r.seq;
      break;
    case RecordType::kPlanned:
      r.plan = get_plan(p);
      break;
    case RecordType::kAttemptStart:
      r.attempt = p.i32();
      break;
    case RecordType::kMark:
      r.site = p.str();
      break;
    case RecordType::kAttemptResult:
      r.attempt = p.i32();
      r.attempt_result = get_attempt(p);
      break;
    case RecordType::kTerminal: {
      JobResult& jr = r.result;
      jr.id = p.u64();
      jr.status = job_status_from_name(p.tok());
      jr.error = p.str();
      const StatusCode code = status_code_from_name(p.tok());
      const std::string msg = p.str();
      const bool retryable = p.b();
      jr.final_status = code == StatusCode::kOk
                            ? Status()
                            : Status(code, msg, retryable);
      jr.measured_ns = p.d();
      jr.passes = p.i32();
      jr.verified = p.b();
      jr.audited = p.b();
      jr.runner_measured_ns = p.d();
      jr.plan_hit = p.b();
      jr.final_fault_site = p.i32();
      jr.plan = get_plan(p);
      const std::uint64_t n_attempts = p.u64();
      if (n_attempts > 1000) {
        throw StatusError(Status::corrupt_journal("absurd attempt count"));
      }
      for (std::uint64_t i = 0; i < n_attempts; ++i) {
        jr.attempts.push_back(get_attempt(p));
      }
      break;
    }
    case RecordType::kQuarantine:
      r.job.id = p.u64();
      r.crash_count = p.i32();
      r.site = p.str();
      break;
    case RecordType::kDispatch:
      r.attempt = p.i32();
      r.site = p.str();
      break;
  }
  return r;
}

JournalWriter::JournalWriter(JournalConfig cfg, std::uint64_t next_lsn)
    : cfg_(std::move(cfg)), next_lsn_(next_lsn) {
  DSM_REQUIRE(!cfg_.dir.empty(), "journal needs a directory");
  ensure_dir(cfg_.dir);
  const std::lock_guard<std::mutex> lock(mu_);
  if (!try_open_segment_locked(next_lsn_)) {
    throw StatusError(Status::io_error(
        "open " + cfg_.dir + "/" + segment_name(next_lsn_) + ": " +
        std::strerror(errno)));
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

bool JournalWriter::try_open_segment_locked(std::uint64_t first_lsn) {
  // O_TRUNC, not O_EXCL: a crash immediately after a rotate can leave an
  // empty (or torn-only) segment with this exact start LSN. Recovery
  // computes next_lsn as max-seen + 1, so any segment already named by
  // first_lsn holds no valid records and truncating it is safe.
  const std::string path = cfg_.dir + "/" + segment_name(first_lsn);
  fd_ = open_retry(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return false;
  segment_bytes_ = 0;
  fsync_parent_dir(path);
  return true;
}

void JournalWriter::fire_hook(const char* site, std::uint64_t seq) {
  if (cfg_.crash_hook) cfg_.crash_hook(site, seq);
}

std::uint64_t JournalWriter::append(JournalRecord r) {
  const std::lock_guard<std::mutex> lock(mu_);
  r.lsn = next_lsn_++;
  const bool healing = degraded_;
  if (degraded_) {
    // The failed segment may end in a torn record, and nothing must ever
    // be appended after a torn record (the reader stops there and would
    // silently drop everything behind it). Heal onto a FRESH segment
    // named by this record's LSN; until one opens, keep dropping.
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    if (!try_open_segment_locked(r.lsn)) {
      ++dropped_;
      return r.lsn;
    }
  }
  const std::string payload = encode_record(r);
  std::string frame;
  frame.reserve(payload.size() + 8);
  put_u32le(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32le(frame, crc32(payload.data(), payload.size()));
  frame += payload;

  Status io = faulty_write_all(fd_, frame.data(), frame.size(),
                               "journal append");
  const std::string site_base =
      std::string("journal.") + record_type_name(r.type);
  fire_hook((site_base + ".before-fsync").c_str(), r.seq);
  if (io.ok() && cfg_.fsync_data) {
    io = faulty_fsync(fd_, "journal fsync");
  }
  fire_hook((site_base + ".after-fsync").c_str(), r.seq);
  if (!io.ok()) {
    // Disk fault (injected or real): degrade instead of throwing. The
    // service keeps serving; the record is dropped and counted, and the
    // next append tries a fresh segment.
    ::close(fd_);
    fd_ = -1;
    degraded_ = true;
    ++dropped_;
    return r.lsn;
  }
  if (healing) {
    degraded_ = false;
    ++heals_;
  }

  segment_bytes_ += frame.size();
  if (segment_bytes_ >= cfg_.segment_max_bytes) {
    ::close(fd_);
    fd_ = -1;
    if (!try_open_segment_locked(next_lsn_)) degraded_ = true;
  }
  return r.lsn;
}

void JournalWriter::rotate() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  if (!try_open_segment_locked(next_lsn_)) degraded_ = true;
}

std::uint64_t JournalWriter::next_lsn() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

bool JournalWriter::degraded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

std::uint64_t JournalWriter::records_dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t JournalWriter::heals() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return heals_;
}

std::vector<std::string> list_segments(const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return {};
  while (dirent* e = ::readdir(d)) {
    std::uint64_t lsn = 0;
    if (parse_segment_name(e->d_name, &lsn)) {
      found.emplace_back(lsn, dir + "/" + e->d_name);
    }
  }
  ::closedir(d);
  std::sort(found.begin(), found.end());
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [lsn, path] : found) out.push_back(std::move(path));
  return out;
}

void prune_segments(const std::string& dir, std::uint64_t min_start_lsn) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> doomed;
  while (dirent* e = ::readdir(d)) {
    std::uint64_t lsn = 0;
    if (parse_segment_name(e->d_name, &lsn) && lsn < min_start_lsn) {
      doomed.push_back(dir + "/" + e->d_name);
    }
  }
  ::closedir(d);
  for (const std::string& path : doomed) ::unlink(path.c_str());
  if (!doomed.empty()) fsync_parent_dir(dir + "/.");
}

SegmentScan read_segment(const std::string& path) {
  SegmentScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) return scan;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) {
      scan.torn_tail = true;  // header itself is incomplete
      break;
    }
    const std::uint32_t len = get_u32le(data + pos);
    const std::uint32_t want_crc = get_u32le(data + pos + 4);
    if (len > kMaxRecordBytes) {
      scan.corrupt = 1;  // length field is garbage; framing untrustworthy
      break;
    }
    if (bytes.size() - pos - 8 < len) {
      scan.torn_tail = true;  // payload cut short by the crash
      break;
    }
    const char* payload = bytes.data() + pos + 8;
    if (crc32(static_cast<const void*>(payload), len) != want_crc) {
      scan.corrupt = 1;
      break;
    }
    try {
      scan.records.push_back(decode_record(std::string(payload, len)));
    } catch (const StatusError&) {
      scan.corrupt = 1;
      break;
    }
    pos += 8 + len;
  }
  return scan;
}

}  // namespace dsm::svc
