#include "svc/codec.hpp"

#include "sort/sort_api.hpp"

namespace dsm::svc::codec {

using wire::dbl;
using wire::netstr;
using wire::Parser;

void put_plan(std::ostringstream& os, const Plan& p) {
  os << ' ' << sort::algo_name(p.algo) << ' ' << sort::model_name(p.model)
     << ' ' << p.radix_bits << ' ' << dbl(p.predicted_raw_ns) << ' '
     << dbl(p.predicted_ns) << ' ' << (p.has_runner_up ? 1 : 0);
  if (p.has_runner_up) {
    os << ' ' << sort::algo_name(p.runner_algo) << ' '
       << sort::model_name(p.runner_model) << ' ' << p.runner_radix_bits
       << ' ' << dbl(p.runner_predicted_ns);
  }
}

Plan get_plan(Parser& p) {
  Plan out;
  out.algo = sort::algo_from_name(p.tok());
  out.model = sort::model_from_name(p.tok());
  out.radix_bits = p.i32();
  out.predicted_raw_ns = p.d();
  out.predicted_ns = p.d();
  out.has_runner_up = p.b();
  if (out.has_runner_up) {
    out.runner_algo = sort::algo_from_name(p.tok());
    out.runner_model = sort::model_from_name(p.tok());
    out.runner_radix_bits = p.i32();
    out.runner_predicted_ns = p.d();
  }
  return out;
}

void put_attempt(std::ostringstream& os, const AttemptRecord& a) {
  os << ' ' << netstr(a.error) << ' ' << (a.retryable ? 1 : 0) << ' '
     << dbl(a.backoff_ms) << ' ' << a.fault_site;
}

AttemptRecord get_attempt(Parser& p) {
  AttemptRecord a;
  a.error = p.str();
  a.retryable = p.b();
  a.backoff_ms = p.d();
  a.fault_site = p.i32();
  return a;
}

void put_job(std::ostringstream& os, const JobSpec& j) {
  os << ' ' << j.id << ' ' << j.n << ' ' << j.nprocs << ' '
     << keys::dist_name(j.dist) << ' ' << j.seed;
  os << ' ' << (j.force_algo ? 1 : 0);
  if (j.force_algo) os << ' ' << sort::algo_name(*j.force_algo);
  os << ' ' << (j.force_model ? 1 : 0);
  if (j.force_model) os << ' ' << sort::model_name(*j.force_model);
  os << ' ' << (j.force_radix_bits ? 1 : 0);
  if (j.force_radix_bits) os << ' ' << *j.force_radix_bits;
  os << ' ' << j.deadline_us << ' ' << j.priority << ' '
     << netstr(j.trace_json_path) << ' ' << j.crash_count << ' '
     << netstr(j.crash_site) << ' ' << (j.recovered_plan ? 1 : 0);
  if (j.recovered_plan) put_plan(os, *j.recovered_plan);
  // Versioned trailing field (format v2): the record type rides as a
  // ` rec <name>` sentinel run, emitted only for non-u32 jobs — every
  // pre-existing byte stream is unchanged and old journals keep decoding
  // (absent field == u32). The sentinel can never collide with the plan
  // that follows a job in cluster frames: "rec" is not an algo name.
  if (j.record != keys::RecordType::kU32) {
    os << " rec " << keys::record_name(j.record);
  }
}

JobSpec get_job(Parser& p) {
  JobSpec j;
  j.id = p.u64();
  j.n = static_cast<Index>(p.u64());
  j.nprocs = p.i32();
  j.dist = keys::dist_from_name(p.tok());
  j.seed = p.u64();
  if (p.b()) j.force_algo = sort::algo_from_name(p.tok());
  if (p.b()) j.force_model = sort::model_from_name(p.tok());
  if (p.b()) j.force_radix_bits = p.i32();
  j.deadline_us = p.u64();
  j.priority = p.i32();
  j.trace_json_path = p.str();
  j.crash_count = p.i32();
  j.crash_site = p.str();
  if (p.b()) j.recovered_plan = get_plan(p);
  if (p.peek_tok() == "rec") {
    p.tok();  // consume the sentinel
    const std::string name = p.tok();
    const Result<keys::RecordType> r = keys::record_from_name(name);
    if (!r.ok()) {
      throw StatusError(
          Status::corrupt_journal("durability payload: " + r.status().message()));
    }
    j.record = r.value();
  }
  return j;
}

}  // namespace dsm::svc::codec
