#include "svc/codec.hpp"

#include "sort/sort_api.hpp"

namespace dsm::svc::codec {

using wire::dbl;
using wire::netstr;
using wire::Parser;

namespace {

// Enum fields arrive from journals and cluster sockets, so an unknown
// name (old format, new peer, or hostile stream) must surface as the
// typed corruption status — never the plain Error the CLI-facing
// from_name helpers throw, and never a blind cast.
[[noreturn]] void fail_enum(const Status& why) {
  throw StatusError(
      Status::corrupt_journal("durability payload: " + why.message()));
}

sort::Algo get_algo(Parser& p) {
  const Result<sort::Algo> r = sort::try_algo_from_name(p.tok());
  if (!r.ok()) fail_enum(r.status());
  return r.value();
}

sort::Model get_model(Parser& p) {
  const Result<sort::Model> r = sort::try_model_from_name(p.tok());
  if (!r.ok()) fail_enum(r.status());
  return r.value();
}

keys::Dist get_dist(Parser& p) {
  const Result<keys::Dist> r = keys::try_dist_from_name(p.tok());
  if (!r.ok()) fail_enum(r.status());
  return r.value();
}

}  // namespace

void put_plan(std::ostringstream& os, const Plan& p) {
  os << ' ' << sort::algo_name(p.algo) << ' ' << sort::model_name(p.model)
     << ' ' << p.radix_bits << ' ' << dbl(p.predicted_raw_ns) << ' '
     << dbl(p.predicted_ns) << ' ' << (p.has_runner_up ? 1 : 0);
  if (p.has_runner_up) {
    os << ' ' << sort::algo_name(p.runner_algo) << ' '
       << sort::model_name(p.runner_model) << ' ' << p.runner_radix_bits
       << ' ' << dbl(p.runner_predicted_ns);
  }
}

Plan get_plan(Parser& p) {
  Plan out;
  out.algo = get_algo(p);
  out.model = get_model(p);
  out.radix_bits = p.i32();
  out.predicted_raw_ns = p.d();
  out.predicted_ns = p.d();
  out.has_runner_up = p.b();
  if (out.has_runner_up) {
    out.runner_algo = get_algo(p);
    out.runner_model = get_model(p);
    out.runner_radix_bits = p.i32();
    out.runner_predicted_ns = p.d();
  }
  return out;
}

void put_attempt(std::ostringstream& os, const AttemptRecord& a) {
  os << ' ' << netstr(a.error) << ' ' << (a.retryable ? 1 : 0) << ' '
     << dbl(a.backoff_ms) << ' ' << a.fault_site;
}

AttemptRecord get_attempt(Parser& p) {
  AttemptRecord a;
  a.error = p.str();
  a.retryable = p.b();
  a.backoff_ms = p.d();
  a.fault_site = p.i32();
  return a;
}

void put_job(std::ostringstream& os, const JobSpec& j) {
  os << ' ' << j.id << ' ' << j.n << ' ' << j.nprocs << ' '
     << keys::dist_name(j.dist) << ' ' << j.seed;
  os << ' ' << (j.force_algo ? 1 : 0);
  if (j.force_algo) os << ' ' << sort::algo_name(*j.force_algo);
  os << ' ' << (j.force_model ? 1 : 0);
  if (j.force_model) os << ' ' << sort::model_name(*j.force_model);
  os << ' ' << (j.force_radix_bits ? 1 : 0);
  if (j.force_radix_bits) os << ' ' << *j.force_radix_bits;
  os << ' ' << j.deadline_us << ' ' << j.priority << ' '
     << netstr(j.trace_json_path) << ' ' << j.crash_count << ' '
     << netstr(j.crash_site) << ' ' << (j.recovered_plan ? 1 : 0);
  if (j.recovered_plan) put_plan(os, *j.recovered_plan);
  // Versioned trailing field (format v2): the record type rides as a
  // ` rec <name>` sentinel run, emitted only for non-u32 jobs — every
  // pre-existing byte stream is unchanged and old journals keep decoding
  // (absent field == u32). The sentinel can never collide with the plan
  // that follows a job in cluster frames: "rec" is not an algo name.
  if (j.record != keys::RecordType::kU32) {
    os << " rec " << keys::record_name(j.record);
  }
}

JobSpec get_job(Parser& p) {
  JobSpec j;
  j.id = p.u64();
  j.n = static_cast<Index>(p.u64());
  j.nprocs = p.i32();
  j.dist = get_dist(p);
  j.seed = p.u64();
  if (p.b()) j.force_algo = get_algo(p);
  if (p.b()) j.force_model = get_model(p);
  if (p.b()) j.force_radix_bits = p.i32();
  j.deadline_us = p.u64();
  j.priority = p.i32();
  j.trace_json_path = p.str();
  j.crash_count = p.i32();
  j.crash_site = p.str();
  if (p.b()) j.recovered_plan = get_plan(p);
  if (p.peek_tok() == "rec") {
    p.tok();  // consume the sentinel
    const std::string name = p.tok();
    const Result<keys::RecordType> r = keys::record_from_name(name);
    if (!r.ok()) {
      throw StatusError(
          Status::corrupt_journal("durability payload: " + r.status().message()));
    }
    j.record = r.value();
  }
  return j;
}

}  // namespace dsm::svc::codec
