// The sort service: queue -> planner -> executor -> metrics.
//
// SortService composes the existing layers into a long-running server.
// Jobs are admitted through a bounded JobQueue (submitters never block; a
// full queue rejects with a reason), planned by the calibrating Planner,
// and executed in FIFO batches on sim::run_indexed's host-thread pool.
//
// Determinism contract (extends the sweep runner's): processing is
// round-based. Each round takes up to `max_batch` jobs in admission
// order, plans them sequentially against the current calibration state,
// executes them concurrently (each job writes only its own result slot),
// then applies calibration observations and metrics in batch order. Plans,
// results, calibration, and metrics therefore depend only on the admission
// order and batch geometry — never on the worker count or host schedule.
// replay() feeds a trace through this path with fixed batch geometry, so
// replaying the same trace is byte-identical for any `workers`.
//
// Error isolation: every per-job step (planning, execution, auditing) is
// wrapped per job; a poisoned job yields a kFailed JobResult with the
// error text while the server keeps serving (the simulator's team-poison
// machinery guarantees the failing cell itself unwinds cleanly).
//
// Robustness: retryable failures (injected faults, transient I/O) are
// re-attempted up to max_attempts with capped exponential backoff and
// seeded jitter; the backoff *sleep* happens only in live mode, but the
// backoff *values* and attempt history are deterministic and replayed.
// Jobs with a deadline are shed before running when the calibrated
// prediction already exceeds it, aborted cooperatively at the next phase
// mark when their virtual time passes it mid-run, and marked
// kDeadlineMiss when they finish late; priority >= kCriticalPriority
// exempts a job from shedding and mid-run abort. Faults are injected
// deterministically per (seed, site, job, attempt) — see svc/faults.hpp.
//
// Shutdown: drain() closes the queue (subsequent submits are rejected
// with kRejectedClosed), processes everything already admitted, and joins
// the server thread.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "svc/faults.hpp"
#include "svc/job.hpp"
#include "svc/journal.hpp"
#include "svc/metrics.hpp"
#include "svc/planner.hpp"
#include "svc/queue.hpp"
#include "svc/recovery.hpp"
#include "svc/remote.hpp"

namespace dsm::svc {

/// Durability: write-ahead journal + calibration snapshots + crash
/// recovery. Off by default (empty dir); turning it on makes the service
/// single-worker (the recovery contract — snapshots taken between
/// batches cover every in-flight job — needs one processing pipeline).
struct DurabilityConfig {
  /// Directory for journal segments, the snapshot, and the quarantine
  /// file. Empty = durability off. Recovered on construction when it
  /// already holds state.
  std::string dir;
  /// Checkpoint every N processed batches (0 = only on drain). Each
  /// checkpoint rotates the journal and prunes covered segments.
  int snapshot_every_batches = 8;
  /// fsync journal appends (the durability guarantee; see JournalConfig).
  bool fsync_data = true;
  std::uint64_t segment_max_bytes = std::uint64_t{1} << 20;
  /// Journal per-phase execution marks (what pins a crash to a precise
  /// "execute:<site>" identity for quarantine counting).
  bool journal_marks = true;
  /// A job whose process died this many times in a row at the same site
  /// is quarantined instead of re-admitted.
  int quarantine_threshold = 2;
  /// Keep journal segments a snapshot has covered instead of pruning
  /// them (the crash harness audits full history across incarnations).
  bool keep_all_segments = false;
  /// Test/harness hook fired at every durability I/O site; see
  /// JournalConfig::crash_hook.
  std::function<void(const char* site, std::uint64_t seq)> crash_hook;

  bool enabled() const { return !dir.empty(); }
};

struct ServiceConfig {
  std::size_t queue_capacity = 64;
  /// Host threads per batch (sim::resolve_jobs semantics: 0 = all).
  int workers = 1;
  /// Max jobs planned+executed per round. Part of the determinism
  /// contract: replaying a trace needs the same max_batch.
  std::size_t max_batch = 8;
  /// Every Nth accepted job also executes the planner's runner-up and
  /// compares measured times (0 = never; audits cost one extra sort).
  std::uint64_t audit_every = 4;
  /// Thread-local input-cache byte budget applied in worker cells
  /// (0 = keep the library default).
  std::uint64_t input_cache_budget_bytes = 0;
  /// Total tries per retryable step (first attempt + retries).
  int max_attempts = 3;
  /// Backoff before retry k is min(cap, base * 2^k) scaled by a seeded
  /// jitter in [0.5, 1.0]; slept only in live mode.
  double retry_backoff_base_ms = 1.0;
  double retry_backoff_cap_ms = 50.0;
  /// Fault injection (disabled by default: seed 0 / rate 0).
  FaultConfig faults;
  PlannerConfig planner;
  DurabilityConfig durability;
  /// Remote execution tier (borrowed; must outlive the service). When
  /// set, execution attempts and audits run on the executor's worker
  /// processes instead of in the worker cell's own thread; planning,
  /// retry, shedding, calibration and journaling stay here. The
  /// determinism contract is unchanged: results are byte-identical to a
  /// local run for any worker-process count.
  RemoteExecutor* remote = nullptr;
  /// End-to-end result integrity for remote attempts (DESIGN.md §12):
  /// compute the input's order-independent multiset fingerprint at
  /// dispatch time and require every successful worker done to report a
  /// matching consumed-input fingerprint plus a passed verification —
  /// otherwise the result is discarded and re-dispatched instead of
  /// acked. Costs one (cached) keygen per dispatched attempt.
  bool verify_remote_integrity = true;
};

class SortService {
 public:
  explicit SortService(ServiceConfig cfg = {});
  ~SortService();

  SortService(const SortService&) = delete;
  SortService& operator=(const SortService&) = delete;

  /// Live mode: start the server loop on its own thread.
  void start();

  /// Admission control; never blocks. Stamps the host submit time. When
  /// `why` is non-null it receives the typed admission outcome (OK on
  /// kAccepted, the full validation report on kRejectedInvalid, ...).
  Admission submit(JobSpec job, Status* why = nullptr);

  /// Close the queue, finish everything admitted, stop the server loop.
  /// Also drains inline when start() was never called. Idempotent.
  void drain();

  /// Replay mode: process `trace` synchronously with fixed batch
  /// geometry; returns results in trace order. Byte-identical output for
  /// any cfg.workers. Requires the service not to be running live.
  std::vector<JobResult> replay(const std::vector<JobSpec>& trace);

  /// Completed results in processing order (moves them out).
  std::vector<JobResult> take_results();

  const Metrics& metrics() const { return metrics_; }
  const Planner& planner() const { return planner_; }
  const JobQueue& queue() const { return queue_; }
  const ServiceConfig& config() const { return cfg_; }

  /// What construction-time recovery did (all-zero when durability is
  /// off or the directory was fresh).
  const RecoveryReport& recovery_report() const { return recovery_report_; }

 private:
  bool durable() const { return cfg_.durability.enabled(); }
  void recover();
  /// Refuse to re-admit a poison job: journal the quarantine + terminal,
  /// append the quarantine file, surface a kQuarantined JobResult.
  void quarantine_job(QuarantineEntry entry);
  /// Checkpoint planner + metrics + queued jobs, rotate the journal,
  /// prune covered segments (server thread only).
  void write_checkpoint();
  void server_loop();
  void process_batch(std::vector<JobSpec>& batch);
  /// Plan one job with planner-calibration fault injection and retry;
  /// leaves `plan` empty on final failure (recorded in `out`).
  void plan_one(const JobSpec& job, JobResult& out,
                std::optional<Plan>& plan);
  /// Execute+audit one job with per-phase fault injection, deadline
  /// enforcement, and retry; never throws (failures land in `out`).
  void execute_one(const JobSpec& job, const Plan& plan, std::uint64_t seq,
                   JobResult& out);
  /// Deterministic backoff before retry `attempt` of `job`.
  double backoff_ms_for(const JobSpec& job, int attempt) const;

  ServiceConfig cfg_;
  JobQueue queue_;
  FaultInjector injector_;
  Planner planner_;
  Metrics metrics_;

  std::thread server_;
  bool started_ = false;
  bool drained_ = false;

  // Durability (all empty/null when cfg_.durability is off).
  std::unique_ptr<JournalWriter> journal_;
  RecoveryReport recovery_report_;
  /// Serializes durable admissions against checkpoint capture, so a
  /// snapshot either fully contains an admission (metrics + queue entry)
  /// or the admission's journal record lands past the snapshot LSN —
  /// never half of each.
  std::mutex durable_mu_;
  /// Every job id ever admitted (duplicate-submit filter; guarded by
  /// durable_mu_).
  std::unordered_set<std::uint64_t> known_ids_;
  int batches_since_snapshot_ = 0;
  /// High-water marks of the journal's degraded-durability counters,
  /// polled at each batch tail to mark the batch's jobs non-durable in
  /// Metrics (server thread only).
  std::uint64_t journal_dropped_seen_ = 0;
  std::uint64_t journal_heals_seen_ = 0;

  std::mutex results_mu_;
  std::vector<JobResult> results_;
};

}  // namespace dsm::svc
