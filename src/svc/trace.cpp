#include "svc/trace.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/fsio.hpp"
#include "common/prng.hpp"
#include "perf/report.hpp"

namespace dsm::svc {

std::vector<JobSpec> make_trace(std::uint64_t seed, std::size_t count,
                                const LoadMix& mix) {
  DSM_REQUIRE(!mix.sizes.empty() && !mix.procs.empty() && !mix.dists.empty(),
              "load mix must offer at least one size, proc count, and dist");
  DSM_REQUIRE(!mix.deadlines_us.empty() && !mix.priorities.empty(),
              "load mix deadline/priority lists must be nonempty");
  DSM_REQUIRE(!mix.records.empty(), "load mix record list must be nonempty");
  // Deadline/priority draws happen only for a non-trivial mix, so the
  // PRNG stream — and every pre-deadline trace — is byte-preserved.
  const bool draw_deadline =
      mix.deadlines_us.size() > 1 || mix.deadlines_us[0] != 0;
  const bool draw_priority =
      mix.priorities.size() > 1 || mix.priorities[0] != 0;
  const bool draw_record =
      mix.records.size() > 1 || mix.records[0] != keys::RecordType::kU32;
  SplitMix64 rng(seed);
  std::vector<JobSpec> jobs;
  jobs.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    JobSpec job;
    job.id = j;
    job.n = mix.sizes[rng.next() % mix.sizes.size()];
    job.nprocs = mix.procs[rng.next() % mix.procs.size()];
    job.dist = mix.dists[rng.next() % mix.dists.size()];
    job.seed = rng.next() | 1;  // any nonzero seed
    if (draw_deadline) {
      job.deadline_us = mix.deadlines_us[rng.next() % mix.deadlines_us.size()];
    }
    if (draw_priority) {
      job.priority = mix.priorities[rng.next() % mix.priorities.size()];
    }
    if (draw_record) {
      job.record = mix.records[rng.next() % mix.records.size()];
    }
    if (!mix.algos.empty()) {
      job.force_algo = mix.algos[rng.next() % mix.algos.size()];
    }
    job.validate();
    jobs.push_back(job);
  }
  return jobs;
}

std::string trace_to_text(std::span<const JobSpec> jobs) {
  std::ostringstream os;
  os << "# dsmsort service trace: id n nprocs dist seed "
        "force_algo force_model force_radix [deadline_us priority]\n";
  for (const JobSpec& j : jobs) {
    os << j.id << ' ' << j.n << ' ' << j.nprocs << ' '
       << keys::dist_name(j.dist) << ' ' << j.seed << ' '
       << (j.force_algo ? sort::algo_name(*j.force_algo) : "-") << ' '
       << (j.force_model ? sort::model_name(*j.force_model) : "-") << ' ';
    if (j.force_radix_bits) {
      os << *j.force_radix_bits;
    } else {
      os << '-';
    }
    // Trailing fields only when non-default, so pre-deadline traces
    // round-trip byte-identically. A non-u32 record forces the deadline
    // and priority columns out (as '-'/0 defaults) — the grammar is
    // positional.
    const bool has_record = j.record != keys::RecordType::kU32;
    if (j.deadline_us != 0 || j.priority != 0 || has_record) {
      if (j.deadline_us != 0) {
        os << ' ' << j.deadline_us;
      } else {
        os << " -";
      }
      os << ' ' << j.priority;
      if (has_record) os << ' ' << keys::record_name(j.record);
    }
    os << '\n';
  }
  return os.str();
}

std::vector<JobSpec> trace_from_text(const std::string& text) {
  std::vector<JobSpec> jobs;
  std::istringstream lines(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    JobSpec j;
    std::string dist, algo, model, radix;
    if (!(fields >> j.id)) continue;  // blank / comment-only line
    if (!(fields >> j.n >> j.nprocs >> dist >> j.seed >> algo >> model >>
          radix)) {
      throw Error("trace line " + std::to_string(lineno) +
                  ": expected 8 fields: " + line);
    }
    std::string deadline, priority;
    if (fields >> deadline) {
      if (!(fields >> priority)) {
        throw Error("trace line " + std::to_string(lineno) +
                    ": deadline_us without priority: " + line);
      }
    }
    std::string record;
    fields >> record;
    std::string extra;
    if (fields >> extra) {
      throw Error("trace line " + std::to_string(lineno) +
                  ": trailing field: " + extra);
    }
    j.dist = keys::dist_from_name(dist);
    if (algo != "-") j.force_algo = sort::algo_from_name(algo);
    if (model != "-") j.force_model = sort::model_from_name(model);
    if (radix != "-") {
      try {
        j.force_radix_bits = std::stoi(radix);
      } catch (...) {
        throw Error("trace line " + std::to_string(lineno) +
                    ": bad radix: " + radix);
      }
    }
    if (!deadline.empty() && deadline != "-") {
      try {
        j.deadline_us = std::stoull(deadline);
      } catch (...) {
        throw Error("trace line " + std::to_string(lineno) +
                    ": bad deadline_us: " + deadline);
      }
    }
    if (!priority.empty() && priority != "-") {
      try {
        j.priority = std::stoi(priority);
      } catch (...) {
        throw Error("trace line " + std::to_string(lineno) +
                    ": bad priority: " + priority);
      }
    }
    if (!record.empty() && record != "-") {
      const Result<keys::RecordType> r = keys::record_from_name(record);
      if (!r.ok()) {
        throw Error("trace line " + std::to_string(lineno) + ": " +
                    r.status().message());
      }
      j.record = r.value();
    }
    j.validate();
    jobs.push_back(std::move(j));
  }
  return jobs;
}

void write_trace(const std::string& path, std::span<const JobSpec> jobs) {
  write_file_atomic(path, trace_to_text(jobs));
}

std::vector<JobSpec> read_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open trace: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return trace_from_text(buf.str());
}

}  // namespace dsm::svc
