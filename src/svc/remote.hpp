// The seam between the single-process service and the cluster tier.
//
// SortService executes attempts either locally (in the worker cell's own
// thread) or, when ServiceConfig::remote is set, by handing the attempt
// to a RemoteExecutor — PR 7's cluster::WorkerPool, which ships it to a
// worker process over the framed socket transport. The interface is
// deliberately attempt-grained: retry policy, deadline classification,
// serialize-fault injection, journaling and metrics stay in svc/server,
// so a remote run is byte-identical to a local one (the determinism
// contract extends across process boundaries — see DESIGN.md §10).
//
// svc/ must not depend on cluster/ (the cluster depends on svc's job and
// codec types), so this header is the only thing the server knows about
// remote execution.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.hpp"
#include "sort/verify.hpp"
#include "svc/faults.hpp"
#include "svc/job.hpp"
#include "svc/metrics.hpp"

namespace dsm::svc {

/// One execution attempt to run remotely. `audit` runs measure the
/// runner-up plan: no hooks, no faults, no trace — exactly the local
/// audit contract.
struct RemoteAttempt {
  JobSpec job;
  Plan plan;
  int attempt = 0;
  bool audit = false;
  /// End-to-end result integrity (DESIGN.md §12): when set, the executor
  /// must check every successful done against `expect` — the
  /// order-independent multiset fingerprint of the input the master
  /// computed at planning time — and discard + re-dispatch on mismatch
  /// instead of acking a corrupted result.
  bool check_integrity = false;
  sort::Checksum expect;
};

/// What the remote attempt produced. When `ran` is false the pool could
/// not execute the attempt anywhere (every worker dead and none
/// spawnable) and `failure` says why; when `ran` is true the attempt has
/// exactly the local outcome shape: ok + measurements, or a typed
/// failure with the fault site that fired worker-side.
struct RemoteOutcome {
  bool ran = false;
  bool ok = false;
  Status failure;
  double measured_ns = 0;
  int passes = 0;
  bool verified = false;
  int fired_site = -1;  // FaultSite that fired during the attempt, or -1
};

class RemoteExecutor {
 public:
  using MarkFn = std::function<void(const char* site, double virtual_ns)>;
  using DispatchFn = std::function<void(const std::string& worker)>;

  virtual ~RemoteExecutor() = default;

  /// Run one attempt on some worker, blocking until it completes (or the
  /// pool exhausts its re-dispatch budget). `on_mark` fires on the
  /// calling thread for every progress mark the worker reports (the
  /// server journals kMark and drives its durability crash hook there);
  /// `on_dispatch` fires after a worker is chosen, before the task is
  /// sent (the server journals kDispatch there — the WAL record that
  /// lets a master crash re-drive unacknowledged dispatches).
  virtual RemoteOutcome run_attempt(const RemoteAttempt& attempt,
                                    const MarkFn& on_mark,
                                    const DispatchFn& on_dispatch) = 0;

  /// Called once from the SortService constructor: the metrics registry
  /// to record cluster events into (borrowed), plus the service knobs
  /// every dispatched task must carry so a worker-side run is configured
  /// exactly like a local one (the fault universe and the input-cache
  /// budget cannot be allowed to drift between master and workers).
  virtual void bind_service(Metrics* metrics, const FaultConfig& faults,
                            std::uint64_t input_cache_budget_bytes) = 0;

  /// Batch-boundary signal from the server thread: `jobs` jobs were just
  /// planned with `predicted_ns` total predicted virtual cost and
  /// `queue_depth` jobs still queued behind them. The elastic pool
  /// resizes here (never mid-batch), so worker count changes cannot
  /// perturb in-flight leases.
  virtual void note_batch(std::size_t jobs, double predicted_ns,
                          std::size_t queue_depth) {
    (void)jobs;
    (void)predicted_ns;
    (void)queue_depth;
  }
};

}  // namespace dsm::svc
