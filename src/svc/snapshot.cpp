#include "svc/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fsio.hpp"
#include "svc/journal.hpp"
#include "svc/wire.hpp"

namespace dsm::svc {
namespace {

using wire::dbl;
using wire::get_u32le;
using wire::kMaxRecordBytes;
using wire::netstr;
using wire::Parser;
using wire::put_u32le;

constexpr const char kMagic[] = "dsmsnap1";

/// Inflight jobs reuse the journal's admit-record codec (netstring-
/// wrapped), so the snapshot and the journal cannot drift apart on how a
/// JobSpec serializes.
std::string encode_job(const JobSpec& j) {
  JournalRecord r;
  r.type = RecordType::kAdmit;
  r.seq = j.svc_seq;
  r.job = j;
  return encode_record(r);
}

JobSpec decode_job(const std::string& payload) {
  const JournalRecord r = decode_record(payload);
  if (r.type != RecordType::kAdmit) {
    throw StatusError(
        Status::corrupt_journal("snapshot inflight entry is not an admit"));
  }
  return r.job;
}

void put_u64_vec(std::ostringstream& os, const std::vector<std::uint64_t>& v) {
  os << ' ' << v.size();
  for (const std::uint64_t x : v) os << ' ' << x;
}

std::vector<std::uint64_t> get_u64_vec(Parser& p, std::size_t max_len) {
  const std::uint64_t n = p.u64();
  if (n > max_len) {
    throw StatusError(Status::corrupt_journal("snapshot vector too long"));
  }
  std::vector<std::uint64_t> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(p.u64());
  return out;
}

void put_dbl_vec(std::ostringstream& os, const std::vector<double>& v) {
  os << ' ' << v.size();
  for (const double x : v) os << ' ' << dbl(x);
}

std::vector<double> get_dbl_vec(Parser& p, std::size_t max_len) {
  const std::uint64_t n = p.u64();
  if (n > max_len) {
    throw StatusError(Status::corrupt_journal("snapshot vector too long"));
  }
  std::vector<double> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(p.d());
  return out;
}

// Keep a hostile length field from allocating unbounded memory while
// still being far above anything a real service accumulates.
constexpr std::size_t kMaxVec = 1u << 24;

}  // namespace

std::string encode_snapshot(const SnapshotData& s) {
  std::ostringstream os;
  os << kMagic << ' ' << s.lsn << ' ' << s.next_seq;

  // Versioned cell list (format "cells2"): cells are named by their
  // (algo, model) tags instead of relying on positional layout, so the
  // snapshot stays decodable as the algorithm registry grows.
  os << " cells2 " << s.planner_cells.size();
  for (const Planner::CellState& c : s.planner_cells) {
    os << ' ' << sort::algo_name(c.algo) << ' ' << sort::model_name(c.model)
       << ' ' << dbl(c.factor) << ' ' << c.samples;
  }

  const Metrics::Counters& c = s.metrics.counters;
  os << ' ' << c.submitted << ' ' << c.accepted << ' ' << c.rejected_full
     << ' ' << c.rejected_closed << ' ' << c.rejected_invalid << ' '
     << c.rejected_fault << ' ' << c.rejected_duplicate << ' ' << c.completed
     << ' ' << c.failed << ' ' << c.shed << ' ' << c.deadline_miss << ' '
     << c.retry_attempts << ' ' << c.retry_successes << ' ' << c.audited
     << ' ' << c.plan_hits;
  const Metrics::Durability& d = s.metrics.durability;
  os << ' ' << d.journal_torn_tail << ' ' << d.journal_corrupt << ' '
     << d.recoveries << ' ' << d.replayed_terminal << ' ' << d.requeued
     << ' ' << d.quarantined << ' ' << d.snapshots;
  os << ' ' << s.metrics.depth_high_water;
  put_u64_vec(os, s.metrics.latency_hist);
  put_u64_vec(os, s.metrics.retry_hist);
  put_u64_vec(os, s.metrics.faults);
  put_dbl_vec(os, s.metrics.rel_err_raw);
  put_dbl_vec(os, s.metrics.rel_err_cal);

  os << ' ' << s.inflight.size();
  for (const JobSpec& j : s.inflight) os << ' ' << netstr(encode_job(j));

  put_u64_vec(os, s.known_ids);
  return os.str();
}

SnapshotData decode_snapshot(const std::string& payload) {
  Parser p(payload);
  if (p.tok() != kMagic) {
    throw StatusError(Status::corrupt_journal("snapshot magic mismatch"));
  }
  SnapshotData s;
  s.lsn = p.u64();
  s.next_seq = p.u64();

  if (p.peek_tok() == "cells2") {
    // Named cell list: an unknown algorithm or model name is a typed
    // corruption error, never a blind cast.
    p.tok();  // consume the version sentinel
    const std::uint64_t ncells = p.u64();
    if (ncells > Planner::kNumCells) {
      throw StatusError(
          Status::corrupt_journal("snapshot planner cell count"));
    }
    s.planner_cells.reserve(ncells);
    for (std::uint64_t i = 0; i < ncells; ++i) {
      Planner::CellState c;
      const Result<sort::Algo> a = sort::try_algo_from_name(p.tok());
      if (!a.ok()) {
        throw StatusError(Status::corrupt_journal(
            "snapshot planner cell: " + a.status().message()));
      }
      const Result<sort::Model> m = sort::try_model_from_name(p.tok());
      if (!m.ok()) {
        throw StatusError(Status::corrupt_journal(
            "snapshot planner cell: " + m.status().message()));
      }
      c.algo = a.value();
      c.model = m.value();
      c.factor = p.d();
      c.samples = p.u64();
      s.planner_cells.push_back(c);
    }
  } else {
    // Legacy positional layout: exactly 8 untagged cells, algo-major over
    // the original {radix, sample} x 4-model matrix.
    const std::uint64_t ncells = p.u64();
    if (ncells != 8) {
      throw StatusError(
          Status::corrupt_journal("snapshot planner cell count"));
    }
    s.planner_cells.resize(8);
    for (std::size_t i = 0; i < 8; ++i) {
      Planner::CellState& c = s.planner_cells[i];
      c.algo = i < 4 ? sort::Algo::kRadix : sort::Algo::kSample;
      c.model = sort::kModelNames[i % 4].value;
      c.factor = p.d();
      c.samples = p.u64();
    }
  }

  Metrics::Counters& c = s.metrics.counters;
  c.submitted = p.u64();
  c.accepted = p.u64();
  c.rejected_full = p.u64();
  c.rejected_closed = p.u64();
  c.rejected_invalid = p.u64();
  c.rejected_fault = p.u64();
  c.rejected_duplicate = p.u64();
  c.completed = p.u64();
  c.failed = p.u64();
  c.shed = p.u64();
  c.deadline_miss = p.u64();
  c.retry_attempts = p.u64();
  c.retry_successes = p.u64();
  c.audited = p.u64();
  c.plan_hits = p.u64();
  Metrics::Durability& d = s.metrics.durability;
  d.journal_torn_tail = p.u64();
  d.journal_corrupt = p.u64();
  d.recoveries = p.u64();
  d.replayed_terminal = p.u64();
  d.requeued = p.u64();
  d.quarantined = p.u64();
  d.snapshots = p.u64();
  s.metrics.depth_high_water = static_cast<std::size_t>(p.u64());
  s.metrics.latency_hist = get_u64_vec(p, kMaxVec);
  s.metrics.retry_hist = get_u64_vec(p, kMaxVec);
  s.metrics.faults = get_u64_vec(p, kMaxVec);
  s.metrics.rel_err_raw = get_dbl_vec(p, kMaxVec);
  s.metrics.rel_err_cal = get_dbl_vec(p, kMaxVec);

  const std::uint64_t njobs = p.u64();
  if (njobs > kMaxVec) {
    throw StatusError(Status::corrupt_journal("snapshot inflight too long"));
  }
  s.inflight.reserve(njobs);
  for (std::uint64_t i = 0; i < njobs; ++i) {
    s.inflight.push_back(decode_job(p.str()));
  }

  s.known_ids = get_u64_vec(p, kMaxVec);
  return s;
}

Status write_snapshot(
    const std::string& path, const SnapshotData& s,
    const std::function<void(const char*, std::uint64_t)>& crash_hook) {
  const std::string payload = encode_snapshot(s);
  std::string framed;
  framed.reserve(payload.size() + 8);
  put_u32le(framed, static_cast<std::uint32_t>(payload.size()));
  put_u32le(framed, crc32(payload.data(), payload.size()));
  framed += payload;

  // The same publish sequence as write_file_atomic, inlined so the crash
  // hook can fire exactly around the rename — the atomicity claim the
  // crash harness exists to check.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::io_error("open " + tmp + ": " + std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st =
          Status::io_error("write " + tmp + ": " + std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status st =
        Status::io_error("fsync " + tmp + ": " + std::strerror(errno));
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  ::close(fd);
  if (crash_hook) crash_hook("snapshot.before-rename", s.lsn);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status st =
        Status::io_error("rename " + tmp + ": " + std::strerror(errno));
    ::unlink(tmp.c_str());
    return st;
  }
  fsync_parent_dir(path);
  if (crash_hook) crash_hook("snapshot.after-rename", s.lsn);
  return Status();
}

Result<SnapshotData> load_snapshot(const std::string& path) {
  Result<std::string> bytes = try_read_file(path);
  if (!bytes.ok()) return bytes.status();
  const std::string& framed = *bytes;
  if (framed.size() < 8) {
    return Status::corrupt_journal("snapshot too short for framing");
  }
  const auto* data = reinterpret_cast<const unsigned char*>(framed.data());
  const std::uint32_t len = get_u32le(data);
  const std::uint32_t want_crc = get_u32le(data + 4);
  if (len > kMaxRecordBytes || framed.size() - 8 != len) {
    return Status::corrupt_journal("snapshot length field mismatch");
  }
  if (crc32(static_cast<const void*>(framed.data() + 8), len) != want_crc) {
    return Status::corrupt_journal("snapshot CRC mismatch");
  }
  try {
    return decode_snapshot(framed.substr(8));
  } catch (const StatusError& e) {
    return e.status();
  }
}

}  // namespace dsm::svc
