#include "svc/planner.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/table.hpp"
#include "perf/predictor.hpp"

namespace dsm::svc {
namespace {

using sort::Algo;
using sort::Model;

// The cell index packs (algo, model) as algo-major over the registry
// tables; that only works while the enum values are their registry
// positions, which these assertions pin.
static_assert(sort::kAlgoNames[static_cast<std::size_t>(Algo::kRadix)].value ==
              Algo::kRadix);
static_assert(
    sort::kAlgoNames[static_cast<std::size_t>(Algo::kMergesort)].value ==
    Algo::kMergesort);
static_assert(
    sort::kModelNames[static_cast<std::size_t>(Model::kShmem)].value ==
    Model::kShmem);

// Keep one observation from swinging a cell past plausible predictor
// error; the EWMA still converges onto any persistent bias inside the
// clamp range within a few samples.
constexpr double kMinRatio = 0.1;
constexpr double kMaxRatio = 10.0;

}  // namespace

Planner::Planner(PlannerConfig cfg) : cfg_(std::move(cfg)) {
  DSM_REQUIRE(!cfg_.radixes.empty(), "planner needs at least one radix");
  DSM_REQUIRE(cfg_.ewma_alpha > 0 && cfg_.ewma_alpha <= 1,
              "ewma_alpha in (0, 1]");
}

std::size_t Planner::cell_index(Algo algo, Model model) {
  const std::size_t a = static_cast<std::size_t>(algo);
  const std::size_t m = static_cast<std::size_t>(model);
  DSM_REQUIRE(a < kNumAlgos && m < kNumModels, "cell index out of range");
  return a * kNumModels + m;
}

Plan Planner::plan(const JobSpec& job) const {
  Result<Plan> r = try_plan(job);
  if (!r.ok()) throw StatusError(r.status());
  return std::move(r).value();
}

Result<Plan> Planner::try_plan(const JobSpec& job) const {
  std::vector<Algo> algos;
  if (job.force_algo) {
    algos.push_back(*job.force_algo);
  } else {
    for (const auto& e : sort::kAlgoNames) algos.push_back(e.value);
  }
  std::vector<Model> models;
  if (job.force_model) {
    models.push_back(*job.force_model);
  } else {
    for (const auto& e : sort::kModelNames) models.push_back(e.value);
  }
  const std::vector<int> radixes = job.force_radix_bits
                                       ? std::vector<int>{*job.force_radix_bits}
                                       : cfg_.radixes;

  struct Candidate {
    Algo algo;
    Model model;
    int radix_bits;
    double raw_ns;
    double calibrated_ns;
  };
  std::vector<Candidate> feasible;
  std::string last_error = "no candidates enumerated";
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const Algo a : algos) {
      for (const Model m : models) {
        if (!sort::algo_supports_model(a, m)) {
          last_error = std::string(sort::model_name(m)) +
                       " does not support algorithm " + sort::algo_name(a);
          continue;
        }
        // Algorithms that ignore the radix knob contribute one candidate
        // per model, not one per radix size.
        const std::vector<int> rset = sort::algo_uses_radix_bits(a)
                                          ? radixes
                                          : std::vector<int>{radixes.front()};
        for (const int r : rset) {
          sort::SortSpec spec;
          spec.algo = a;
          spec.model = m;
          spec.nprocs = job.nprocs;
          spec.n = job.n;
          spec.radix_bits = r;
          spec.dist = job.dist;
          spec.seed = job.seed;
          spec.record = job.record;  // charge-oblivious, but keep the
                                     // candidate spec faithful to the job
          double raw = 0;
          try {
            raw = perf::predict(spec).total_ns;
          } catch (const Error& e) {
            // Infeasible combination (e.g. sample on CC-SAS-NEW, radix
            // bits out of range): skip; remember why in case nothing fits.
            last_error = e.what();
            continue;
          }
          const Cell& cell = cells_[cell_index(a, m)];
          const double f =
              (cfg_.calibrate && cell.samples > 0) ? cell.factor : 1.0;
          feasible.push_back(Candidate{a, m, r, raw, raw * f});
        }
      }
    }
  }
  if (feasible.empty()) {
    return Status::infeasible("no feasible plan for job " +
                              std::to_string(job.id) + ": " + last_error);
  }

  const auto best_it = std::min_element(
      feasible.begin(), feasible.end(), [](const Candidate& x,
                                           const Candidate& y) {
        return x.calibrated_ns < y.calibrated_ns;
      });
  Plan out;
  out.algo = best_it->algo;
  out.model = best_it->model;
  out.radix_bits = best_it->radix_bits;
  out.predicted_raw_ns = best_it->raw_ns;
  out.predicted_ns = best_it->calibrated_ns;

  // Runner-up: cheapest candidate from a different (algo, model) cell —
  // a genuinely different strategy, not just another radix size.
  const Candidate* runner = nullptr;
  for (const Candidate& c : feasible) {
    if (c.algo == out.algo && c.model == out.model) continue;
    if (runner == nullptr || c.calibrated_ns < runner->calibrated_ns) {
      runner = &c;
    }
  }
  if (runner != nullptr) {
    out.has_runner_up = true;
    out.runner_algo = runner->algo;
    out.runner_model = runner->model;
    out.runner_radix_bits = runner->radix_bits;
    out.runner_predicted_ns = runner->calibrated_ns;
  }
  return out;
}

void Planner::observe(const Plan& plan, double measured_ns) {
  if (plan.predicted_raw_ns <= 0 || measured_ns <= 0) return;
  const double ratio = std::clamp(measured_ns / plan.predicted_raw_ns,
                                  kMinRatio, kMaxRatio);
  const std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[cell_index(plan.algo, plan.model)];
  cell.factor = (1.0 - cfg_.ewma_alpha) * cell.factor +
                cfg_.ewma_alpha * ratio;
  ++cell.samples;
}

double Planner::factor(sort::Algo algo, sort::Model model) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Cell& cell = cells_[cell_index(algo, model)];
  return cell.samples > 0 ? cell.factor : 1.0;
}

std::uint64_t Planner::observations(sort::Algo algo, sort::Model model) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cells_[cell_index(algo, model)].samples;
}

std::vector<Planner::CellState> Planner::export_cells() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<CellState> out;
  out.reserve(kNumCells);
  for (const auto& ae : sort::kAlgoNames) {
    for (const auto& me : sort::kModelNames) {
      const Cell& cell = cells_[cell_index(ae.value, me.value)];
      out.push_back(CellState{ae.value, me.value, cell.factor, cell.samples});
    }
  }
  return out;
}

void Planner::import_cells(const std::vector<CellState>& cells) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (Cell& c : cells_) c = Cell{};
  for (const CellState& c : cells) {
    Cell& slot = cells_[cell_index(c.algo, c.model)];
    slot.factor = c.factor;
    slot.samples = c.samples;
  }
}

std::string Planner::calibration_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& ae : sort::kAlgoNames) {
    for (const auto& me : sort::kModelNames) {
      if (!sort::algo_supports_model(ae.value, me.value)) continue;
      const Cell& cell = cells_[cell_index(ae.value, me.value)];
      os << (first ? "" : ", ") << "{\"algo\": \""
         << sort::algo_name(ae.value) << "\", \"model\": \""
         << sort::model_name(me.value) << "\", \"factor\": "
         << fmt_fixed(cell.samples > 0 ? cell.factor : 1.0, 4)
         << ", \"samples\": " << cell.samples << "}";
      first = false;
    }
  }
  os << "]";
  return os.str();
}

}  // namespace dsm::svc
