#include "svc/planner.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/table.hpp"
#include "perf/predictor.hpp"

namespace dsm::svc {
namespace {

using sort::Algo;
using sort::Model;

constexpr Algo kAlgos[] = {Algo::kRadix, Algo::kSample};
constexpr Model kModels[] = {Model::kCcSas, Model::kCcSasNew, Model::kMpi,
                             Model::kShmem};

// Keep one observation from swinging a cell past plausible predictor
// error; the EWMA still converges onto any persistent bias inside the
// clamp range within a few samples.
constexpr double kMinRatio = 0.1;
constexpr double kMaxRatio = 10.0;

}  // namespace

Planner::Planner(PlannerConfig cfg) : cfg_(std::move(cfg)) {
  DSM_REQUIRE(!cfg_.radixes.empty(), "planner needs at least one radix");
  DSM_REQUIRE(cfg_.ewma_alpha > 0 && cfg_.ewma_alpha <= 1,
              "ewma_alpha in (0, 1]");
}

std::size_t Planner::cell_index(Algo algo, Model model) {
  return static_cast<std::size_t>(algo) * 4 + static_cast<std::size_t>(model);
}

Plan Planner::plan(const JobSpec& job) const {
  Result<Plan> r = try_plan(job);
  if (!r.ok()) throw StatusError(r.status());
  return std::move(r).value();
}

Result<Plan> Planner::try_plan(const JobSpec& job) const {
  const std::vector<Algo> algos =
      job.force_algo ? std::vector<Algo>{*job.force_algo}
                     : std::vector<Algo>(std::begin(kAlgos), std::end(kAlgos));
  const std::vector<Model> models =
      job.force_model
          ? std::vector<Model>{*job.force_model}
          : std::vector<Model>(std::begin(kModels), std::end(kModels));
  const std::vector<int> radixes = job.force_radix_bits
                                       ? std::vector<int>{*job.force_radix_bits}
                                       : cfg_.radixes;

  struct Candidate {
    Algo algo;
    Model model;
    int radix_bits;
    double raw_ns;
    double calibrated_ns;
  };
  std::vector<Candidate> feasible;
  std::string last_error = "no candidates enumerated";
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const Algo a : algos) {
      for (const Model m : models) {
        for (const int r : radixes) {
          sort::SortSpec spec;
          spec.algo = a;
          spec.model = m;
          spec.nprocs = job.nprocs;
          spec.n = job.n;
          spec.radix_bits = r;
          spec.dist = job.dist;
          spec.seed = job.seed;
          spec.record = job.record;  // charge-oblivious, but keep the
                                     // candidate spec faithful to the job
          double raw = 0;
          try {
            raw = perf::predict(spec).total_ns;
          } catch (const Error& e) {
            // Infeasible combination (e.g. sample on CC-SAS-NEW, radix
            // bits out of range): skip; remember why in case nothing fits.
            last_error = e.what();
            continue;
          }
          const Cell& cell = cells_[cell_index(a, m)];
          const double f =
              (cfg_.calibrate && cell.samples > 0) ? cell.factor : 1.0;
          feasible.push_back(Candidate{a, m, r, raw, raw * f});
        }
      }
    }
  }
  if (feasible.empty()) {
    return Status::infeasible("no feasible plan for job " +
                              std::to_string(job.id) + ": " + last_error);
  }

  const auto best_it = std::min_element(
      feasible.begin(), feasible.end(), [](const Candidate& x,
                                           const Candidate& y) {
        return x.calibrated_ns < y.calibrated_ns;
      });
  Plan out;
  out.algo = best_it->algo;
  out.model = best_it->model;
  out.radix_bits = best_it->radix_bits;
  out.predicted_raw_ns = best_it->raw_ns;
  out.predicted_ns = best_it->calibrated_ns;

  // Runner-up: cheapest candidate from a different (algo, model) cell —
  // a genuinely different strategy, not just another radix size.
  const Candidate* runner = nullptr;
  for (const Candidate& c : feasible) {
    if (c.algo == out.algo && c.model == out.model) continue;
    if (runner == nullptr || c.calibrated_ns < runner->calibrated_ns) {
      runner = &c;
    }
  }
  if (runner != nullptr) {
    out.has_runner_up = true;
    out.runner_algo = runner->algo;
    out.runner_model = runner->model;
    out.runner_radix_bits = runner->radix_bits;
    out.runner_predicted_ns = runner->calibrated_ns;
  }
  return out;
}

void Planner::observe(const Plan& plan, double measured_ns) {
  if (plan.predicted_raw_ns <= 0 || measured_ns <= 0) return;
  const double ratio = std::clamp(measured_ns / plan.predicted_raw_ns,
                                  kMinRatio, kMaxRatio);
  const std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[cell_index(plan.algo, plan.model)];
  cell.factor = (1.0 - cfg_.ewma_alpha) * cell.factor +
                cfg_.ewma_alpha * ratio;
  ++cell.samples;
}

double Planner::factor(sort::Algo algo, sort::Model model) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Cell& cell = cells_[cell_index(algo, model)];
  return cell.samples > 0 ? cell.factor : 1.0;
}

std::uint64_t Planner::observations(sort::Algo algo, sort::Model model) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cells_[cell_index(algo, model)].samples;
}

std::vector<Planner::CellState> Planner::export_cells() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<CellState> out(8);
  for (std::size_t i = 0; i < 8; ++i) {
    out[i].factor = cells_[i].factor;
    out[i].samples = cells_[i].samples;
  }
  return out;
}

void Planner::import_cells(const std::vector<CellState>& cells) {
  DSM_REQUIRE(cells.size() == 8, "planner snapshot must carry 8 cells");
  const std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < 8; ++i) {
    cells_[i].factor = cells[i].factor;
    cells_[i].samples = cells[i].samples;
  }
}

std::string Planner::calibration_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const Algo a : kAlgos) {
    for (const Model m : kModels) {
      if (a == Algo::kSample && m == Model::kCcSasNew) continue;
      const Cell& cell = cells_[cell_index(a, m)];
      os << (first ? "" : ", ") << "{\"algo\": \"" << sort::algo_name(a)
         << "\", \"model\": \"" << sort::model_name(m) << "\", \"factor\": "
         << fmt_fixed(cell.samples > 0 ? cell.factor : 1.0, 4)
         << ", \"samples\": " << cell.samples << "}";
      first = false;
    }
  }
  os << "]";
  return os.str();
}

}  // namespace dsm::svc
