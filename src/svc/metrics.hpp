// Service metrics registry: admission counters, completion counters,
// fixed-bucket latency histograms, plan-audit hit rates, and predictor
// accuracy accumulators.
//
// Everything recorded here is derived from deterministic inputs (virtual
// times, counters in processing order), so to_json() is part of the replay
// determinism contract: identical traffic in identical order produces
// byte-identical JSON for any worker count. Host wall-clock quantities are
// deliberately kept out; the bench reports those alongside, from its own
// measurements.
//
// The latency histogram uses fixed power-of-two virtual-microsecond
// buckets: bucket k counts jobs with measured time in [2^k, 2^(k+1)) us
// (k = 0..kLatencyBuckets-2; the last bucket is the overflow tail).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "svc/job.hpp"
#include "svc/queue.hpp"

namespace dsm::svc {

class Metrics {
 public:
  static constexpr int kLatencyBuckets = 24;

  struct Counters {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected_full = 0;
    std::uint64_t rejected_closed = 0;
    std::uint64_t rejected_invalid = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t audited = 0;
    std::uint64_t plan_hits = 0;
  };

  struct Accuracy {
    std::uint64_t count = 0;       // jobs with a usable prediction
    double mean_rel_err_raw = 0;   // |raw predicted - measured| / measured
    double mean_rel_err_cal = 0;   // same with the calibrated prediction
    // Calibrated error over the first/second half of completions, in
    // processing order — the before/after view of online calibration.
    double first_half_cal = 0;
    double second_half_cal = 0;
  };

  void on_admission(Admission a);
  void on_complete(const JobResult& r);
  void note_queue_depth(std::size_t depth);

  Counters counters() const;
  Accuracy accuracy() const;
  std::size_t queue_depth_high_water() const;
  std::vector<std::uint64_t> latency_histogram() const;

  /// Deterministic JSON object (counters, histogram, accuracy, audits).
  std::string to_json() const;
  /// Histogram as CSV: bucket_lo_us,bucket_hi_us,count.
  std::string histogram_csv() const;

 private:
  mutable std::mutex mu_;
  Counters c_;
  std::size_t depth_high_water_ = 0;
  std::uint64_t hist_[kLatencyBuckets] = {};
  // Per-completion relative errors, in processing order.
  std::vector<double> rel_err_raw_;
  std::vector<double> rel_err_cal_;
};

}  // namespace dsm::svc
