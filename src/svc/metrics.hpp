// Service metrics registry: admission counters, completion counters,
// robustness counters (sheds, deadline misses, retries, per-site injected
// faults), fixed-bucket latency and retry histograms, plan-audit hit
// rates, and predictor accuracy accumulators.
//
// Everything recorded here is derived from deterministic inputs (virtual
// times, seeded fault decisions, counters in processing order), so
// to_json() is part of the replay determinism contract: identical traffic
// in identical order produces byte-identical JSON for any worker count.
// Host wall-clock quantities are deliberately kept out; the bench reports
// those alongside, from its own measurements.
//
// The latency histogram uses fixed power-of-two virtual-microsecond
// buckets: bucket k counts jobs with measured time in [2^k, 2^(k+1)) us
// (k = 0..kLatencyBuckets-2; the last bucket is the overflow tail). The
// retry histogram counts jobs by the number of failed attempts that
// preceded their final outcome (last bucket = overflow).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "svc/faults.hpp"
#include "svc/job.hpp"
#include "svc/queue.hpp"

namespace dsm::svc {

class Metrics {
 public:
  static constexpr int kLatencyBuckets = 24;
  static constexpr int kRetryBuckets = 8;

  struct Counters {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected_full = 0;
    std::uint64_t rejected_closed = 0;
    std::uint64_t rejected_invalid = 0;
    std::uint64_t rejected_fault = 0;
    std::uint64_t completed = 0;  // ran to completion: kOk + kDeadlineMiss
    std::uint64_t failed = 0;
    std::uint64_t shed = 0;           // rejected pre-run on predicted cost
    std::uint64_t deadline_miss = 0;  // ran past (or aborted at) deadline
    std::uint64_t retry_attempts = 0;   // failed attempts that were retried
    std::uint64_t retry_successes = 0;  // jobs that succeeded after >=1 retry
    std::uint64_t audited = 0;
    std::uint64_t plan_hits = 0;
  };

  struct Accuracy {
    std::uint64_t count = 0;       // jobs with a usable prediction
    double mean_rel_err_raw = 0;   // |raw predicted - measured| / measured
    double mean_rel_err_cal = 0;   // same with the calibrated prediction
    // Calibrated error over the first/second half of completions, in
    // processing order — the before/after view of online calibration.
    double first_half_cal = 0;
    double second_half_cal = 0;
  };

  void on_admission(Admission a);
  void on_complete(const JobResult& r);
  /// An injected fault fired at `site` (counted per site).
  void on_fault(FaultSite site);
  void note_queue_depth(std::size_t depth);

  Counters counters() const;
  Accuracy accuracy() const;
  std::size_t queue_depth_high_water() const;
  std::vector<std::uint64_t> latency_histogram() const;
  /// Jobs by failed-attempt count (bucket k = k prior failures).
  std::vector<std::uint64_t> retry_histogram() const;
  std::vector<std::uint64_t> fault_counts() const;  // per FaultSite

  /// Deterministic JSON object (counters, histograms, faults, accuracy).
  std::string to_json() const;
  /// Histogram as CSV: bucket_lo_us,bucket_hi_us,count.
  std::string histogram_csv() const;

 private:
  mutable std::mutex mu_;
  Counters c_;
  std::size_t depth_high_water_ = 0;
  std::uint64_t hist_[kLatencyBuckets] = {};
  std::uint64_t retry_hist_[kRetryBuckets] = {};
  std::uint64_t faults_[kFaultSiteCount] = {};
  // Per-completion relative errors, in processing order.
  std::vector<double> rel_err_raw_;
  std::vector<double> rel_err_cal_;
};

}  // namespace dsm::svc
