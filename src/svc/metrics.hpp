// Service metrics registry: admission counters, completion counters,
// robustness counters (sheds, deadline misses, retries, per-site injected
// faults), fixed-bucket latency and retry histograms, plan-audit hit
// rates, and predictor accuracy accumulators.
//
// Everything recorded here is derived from deterministic inputs (virtual
// times, seeded fault decisions, counters in processing order), so
// to_json() is part of the replay determinism contract: identical traffic
// in identical order produces byte-identical JSON for any worker count.
// Host wall-clock quantities are deliberately kept out; the bench reports
// those alongside, from its own measurements.
//
// The latency histogram uses fixed power-of-two virtual-microsecond
// buckets: bucket k counts jobs with measured time in [2^k, 2^(k+1)) us
// (k = 0..kLatencyBuckets-2; the last bucket is the overflow tail). The
// retry histogram counts jobs by the number of failed attempts that
// preceded their final outcome (last bucket = overflow).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "svc/faults.hpp"
#include "svc/job.hpp"
#include "svc/queue.hpp"

namespace dsm::svc {

class Metrics {
 public:
  static constexpr int kLatencyBuckets = 24;
  static constexpr int kRetryBuckets = 8;

  struct Counters {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected_full = 0;
    std::uint64_t rejected_closed = 0;
    std::uint64_t rejected_invalid = 0;
    std::uint64_t rejected_fault = 0;
    std::uint64_t rejected_duplicate = 0;  // durable-mode idempotent resubmit
    std::uint64_t completed = 0;  // ran to completion: kOk + kDeadlineMiss
    std::uint64_t failed = 0;
    std::uint64_t shed = 0;           // rejected pre-run on predicted cost
    std::uint64_t deadline_miss = 0;  // ran past (or aborted at) deadline
    std::uint64_t retry_attempts = 0;   // failed attempts that were retried
    std::uint64_t retry_successes = 0;  // jobs that succeeded after >=1 retry
    std::uint64_t audited = 0;
    std::uint64_t plan_hits = 0;
  };

  /// Durability/recovery counters. Unlike the request counters these are
  /// not part of the replay determinism contract across *processes* that
  /// crash differently — a recovered service legitimately reports the
  /// recoveries it performed — but they are deterministic for a given
  /// crash history, and zero for a service without a durability_dir.
  struct Durability {
    std::uint64_t journal_torn_tail = 0;  // segments ending in a torn record
    std::uint64_t journal_corrupt = 0;    // records failing CRC / framing
    std::uint64_t recoveries = 0;         // recovery passes that found state
    std::uint64_t replayed_terminal = 0;  // finished jobs replayed, not re-run
    std::uint64_t requeued = 0;           // in-flight jobs re-admitted
    std::uint64_t quarantined = 0;        // poison jobs refused re-admission
    std::uint64_t snapshots = 0;          // checkpoints written
  };

  struct Accuracy {
    std::uint64_t count = 0;       // jobs with a usable prediction
    double mean_rel_err_raw = 0;   // |raw predicted - measured| / measured
    double mean_rel_err_cal = 0;   // same with the calibrated prediction
    // Calibrated error over the first/second half of completions, in
    // processing order — the before/after view of online calibration.
    double first_half_cal = 0;
    double second_half_cal = 0;
  };

  /// Cluster-tier counters, gauges, and the dispatch->ack latency
  /// histogram (power-of-two host-microsecond buckets, same shape as the
  /// virtual-latency histogram). Deliberately kept out of to_json() and
  /// the snapshot State: ack latencies are host wall-clock and the
  /// spawn/retire history depends on the worker-process count, so
  /// folding them into the main report would break the byte-identical
  /// replay contract. cluster_json()/cluster_csv() report them
  /// separately.
  struct Cluster {
    std::uint64_t dispatches = 0;    // tasks sent to a worker process
    std::uint64_t acks = 0;          // done messages received
    std::uint64_t redispatches = 0;  // attempts re-driven after a death
    std::uint64_t worker_deaths = 0;
    std::uint64_t workers_spawned = 0;    // forked + accepted, lifetime
    std::uint64_t workers_respawned = 0;  // spawns replacing a death
    std::uint64_t workers_retired = 0;    // elastic scale-down retires
    // Gray-failure layer (DESIGN.md §12).
    std::uint64_t heartbeats = 0;      // kHeartbeat frames received
    std::uint64_t hedges_issued = 0;   // duplicate dispatches on suspicion
    std::uint64_t hedges_won = 0;      // attempts settled by the hedge copy
    std::uint64_t hedge_losers = 0;    // copies cancelled after a winner
    std::uint64_t integrity_violations = 0;  // done results discarded
    std::uint64_t workers_quarantined = 0;   // strike threshold reached
    // Current worker-state gauges (last reported) and the peak alive
    // (free + working) complement.
    std::uint64_t gauge_free = 0;
    std::uint64_t gauge_working = 0;
    std::uint64_t gauge_draining = 0;
    std::uint64_t gauge_dead = 0;
    std::uint64_t gauge_quarantined = 0;
    std::uint64_t peak_alive = 0;
  };

  /// Disk-health counters for the degraded-durability mode (DESIGN.md
  /// §12): journal appends dropped to injected/real disk faults, jobs
  /// completed while the journal was degraded (their terminal records
  /// never became durable), segment heals, and failed checkpoint writes.
  /// Like Cluster, these depend on the fault environment rather than the
  /// request stream, so they stay out of to_json() and the snapshot
  /// State; disk_json() reports them separately.
  struct DiskHealth {
    std::uint64_t degraded_appends = 0;  // journal records dropped
    std::uint64_t non_durable_jobs = 0;  // jobs acked without a durable record
    std::uint64_t heals = 0;             // fresh-segment recoveries
    std::uint64_t snapshot_failures = 0; // checkpoint writes that failed
  };

  void on_admission(Admission a);
  void on_complete(const JobResult& r);
  /// An injected fault fired at `site` (counted per site).
  void on_fault(FaultSite site);
  void note_queue_depth(std::size_t depth);

  // Cluster-tier events (see cluster/master.cpp for the call sites).
  void on_remote_dispatch();
  void on_remote_ack(double host_us);  // dispatch->ack host latency
  void on_redispatch();
  void on_worker_spawn(bool respawn);
  void on_worker_death();
  void on_worker_retire();
  void on_worker_gauge(int free, int working, int draining, int dead,
                       int quarantined);

  // Gray-failure events (cluster/master.cpp drive loop).
  void on_heartbeat();
  void on_hedge_issued();
  void on_hedge_won();
  void on_hedge_loser();
  void on_integrity_violation();
  void on_worker_quarantine();

  // Durability events (recovery scan, checkpointing).
  void on_journal_torn_tail();
  void on_journal_corrupt(std::uint64_t records = 1);
  void on_recovery(std::uint64_t replayed_terminal, std::uint64_t requeued,
                   std::uint64_t quarantined);
  void on_snapshot();

  // Degraded-durability events (svc/journal.cpp, svc/server.cpp).
  void on_degraded_append(std::uint64_t records = 1);
  void on_non_durable_jobs(std::uint64_t jobs);
  void on_durability_heal();
  void on_snapshot_failure();

  Counters counters() const;
  Durability durability() const;
  Cluster cluster() const;
  DiskHealth disk_health() const;
  Accuracy accuracy() const;
  std::size_t queue_depth_high_water() const;
  std::vector<std::uint64_t> latency_histogram() const;
  /// Jobs by failed-attempt count (bucket k = k prior failures).
  std::vector<std::uint64_t> retry_histogram() const;
  std::vector<std::uint64_t> fault_counts() const;  // per FaultSite

  /// Deterministic JSON object (counters, histograms, faults, accuracy).
  std::string to_json() const;
  /// Histogram as CSV: bucket_lo_us,bucket_hi_us,count.
  std::string histogram_csv() const;
  /// Cluster-tier JSON (counters, gauges, dispatch->ack histogram) —
  /// host- and worker-count-dependent, hence separate from to_json().
  std::string cluster_json() const;
  /// Dispatch->ack latency histogram as CSV (host microseconds).
  std::string cluster_csv() const;
  /// Disk-health JSON (degraded-durability counters) — fault-environment
  /// dependent, hence separate from to_json().
  std::string disk_json() const;

  /// Complete registry state, for calibration snapshots. import_state
  /// replaces everything; export-then-import on a fresh registry yields a
  /// byte-identical to_json().
  struct State {
    Counters counters;
    Durability durability;
    std::size_t depth_high_water = 0;
    std::vector<std::uint64_t> latency_hist;  // kLatencyBuckets entries
    std::vector<std::uint64_t> retry_hist;    // kRetryBuckets entries
    std::vector<std::uint64_t> faults;        // kFaultSiteCount entries
    std::vector<double> rel_err_raw;
    std::vector<double> rel_err_cal;
  };
  State export_state() const;
  void import_state(const State& s);

 private:
  mutable std::mutex mu_;
  Counters c_;
  Durability d_;
  Cluster cl_;
  DiskHealth dh_;
  std::size_t depth_high_water_ = 0;
  std::uint64_t ack_hist_[kLatencyBuckets] = {};
  std::uint64_t hist_[kLatencyBuckets] = {};
  std::uint64_t retry_hist_[kRetryBuckets] = {};
  std::uint64_t faults_[kFaultSiteCount] = {};
  // Per-completion relative errors, in processing order.
  std::vector<double> rel_err_raw_;
  std::vector<double> rel_err_cal_;
};

}  // namespace dsm::svc
