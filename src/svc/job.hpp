// Request/response types for the sort service.
//
// A JobSpec describes one sort request as a client would pose it: how many
// keys, which distribution, how many simulated processors — but not which
// algorithm, programming model, or radix size to use. Choosing that
// combination is the Planner's job (the paper's model-selection question,
// answered per request). A job may pin any subset of the three dimensions
// (`force_*`) for A/B probes and failure injection, carry a virtual-time
// deadline the executor enforces both predictively (load shedding) and
// during the run (straggler abort), and a priority that exempts critical
// work from shedding.
//
// A JobResult carries the plan that was chosen, the predicted and measured
// virtual times, the job's fate as a typed Status, and the per-attempt
// retry history. Results are value types with a deterministic JSON
// rendering: replaying a trace must produce byte-identical result lines
// for any worker count (the service extends the sweep runner's
// determinism contract — deadlines are virtual-time, backoffs are seeded,
// so retries and deadline misses replay exactly).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "keys/distributions.hpp"
#include "sort/sort_api.hpp"

namespace dsm::svc {

/// Jobs at this priority or above are never shed and never deadline-
/// aborted mid-run: they run to completion and at worst report a miss.
constexpr int kCriticalPriority = 2;

/// The planner's decision for one job. (Defined before JobSpec because a
/// recovered job carries the plan its pre-crash incarnation journaled.)
struct Plan {
  sort::Algo algo = sort::Algo::kRadix;
  sort::Model model = sort::Model::kShmem;
  int radix_bits = 8;
  double predicted_raw_ns = 0;  // closed-form predictor, uncalibrated
  double predicted_ns = 0;      // after EWMA calibration

  // Best candidate from a different (algo, model) cell — the measured
  // opponent for plan-accuracy audits.
  bool has_runner_up = false;
  sort::Algo runner_algo = sort::Algo::kRadix;
  sort::Model runner_model = sort::Model::kShmem;
  int runner_radix_bits = 8;
  double runner_predicted_ns = 0;

  std::string to_json() const;
};

struct JobSpec {
  std::uint64_t id = 0;
  Index n = Index{1} << 20;
  int nprocs = 16;
  keys::Dist dist = keys::Dist::kGauss;
  std::uint64_t seed = 1;

  /// Record type the job sorts (DESIGN.md §11). Defaults to u32 — the
  /// paper's workload and the implicit type of every pre-existing journal
  /// (the codec only emits the field for non-u32 jobs, so old byte
  /// streams decode unchanged). Charged times are record-oblivious, so
  /// this never changes deadlines, shedding, or planner behaviour.
  keys::RecordType record = keys::RecordType::kU32;

  // Pin planner dimensions (unset = planner chooses).
  std::optional<sort::Algo> force_algo;
  std::optional<sort::Model> force_model;
  std::optional<int> force_radix_bits;

  /// Completion deadline in virtual microseconds (0 = none). Virtual, not
  /// host, time: whether a job makes its deadline is a property of the
  /// simulated sort and therefore identical in live and replay runs.
  std::uint64_t deadline_us = 0;

  /// 0 = normal (sheddable); >= kCriticalPriority = must-run.
  int priority = 0;

  /// When nonempty, the executed sort writes its event trace here
  /// (per-job observability; an unwritable path makes the job fail).
  std::string trace_json_path;

  /// Host-side submit timestamp (seconds, steady clock), stamped by
  /// SortService::submit in live mode; 0 in replay mode. Never serialized
  /// into deterministic output.
  double host_submit_s = 0;

  // --- Durability bookkeeping (service-internal; never set by clients
  // and never serialized into client traces). ---

  /// Admission sequence number, assigned by the JobQueue when the job is
  /// accepted. Stable across crash recovery: a re-admitted job keeps its
  /// original seq so batch geometry and plan-audit alignment replay
  /// exactly.
  std::uint64_t svc_seq = 0;

  /// How many times this job was mid-flight when the process died at
  /// `crash_site`, carried across recoveries in the re-admission record.
  /// Reaching the quarantine threshold moves the job to the quarantine
  /// file instead of re-admitting it.
  int crash_count = 0;
  std::string crash_site;

  /// Plan journaled by a pre-crash incarnation. Recovery threads it back
  /// so the re-run executes the exact plan the uncrashed service chose —
  /// re-planning mid-batch could see calibration state the original plan
  /// pre-dated and drift from the golden (uncrashed) run.
  std::optional<Plan> recovered_plan;

  /// Admission-time sanity checks; every violated constraint is collected
  /// into one kInvalidArgument status (OK when valid). Deliberately does
  /// not cross-check algo x model feasibility — infeasible combinations
  /// are planner/executor failures, exercising per-job error isolation.
  Status validate_status() const;
  /// Throwing wrapper: raises StatusError(validate_status()).
  void validate() const;
};

enum class JobStatus {
  kOk,
  kFailed,
  kShed,          // rejected pre-run: predicted time exceeds the deadline
  kDeadlineMiss,  // ran (or was aborted mid-run) past its deadline
};

const char* job_status_name(JobStatus s);
/// Inverse of job_status_name (throws dsm::Error on an unknown name);
/// used by the journal decoder.
JobStatus job_status_from_name(const std::string& name);

/// One failed attempt in a job's retry history.
struct AttemptRecord {
  std::string error;      // status text of the failure
  bool retryable = false;
  double backoff_ms = 0;  // deterministic backoff charged before the retry
                          // (0 on the final, non-retried attempt)
  /// FaultSite index when the failure was an injected fault, -1 otherwise.
  /// Journaled so recovery can replay per-site fault counters; not part
  /// of the JSON rendering.
  int fault_site = -1;
};

struct JobResult {
  std::uint64_t id = 0;
  JobStatus status = JobStatus::kOk;
  std::string error;  // nonempty iff kFailed / kShed / kDeadlineMiss
  /// Typed final outcome: OK for kOk, otherwise the last failure.
  Status final_status;
  /// Failed attempts that preceded the final outcome (empty when the
  /// first attempt succeeded).
  std::vector<AttemptRecord> attempts;
  Plan plan;
  double measured_ns = 0;  // virtual time of the executed plan
  int passes = 0;
  bool verified = false;

  // Plan audit (every audit_every-th job): the runner-up plan is also
  // executed and the measured times compared.
  bool audited = false;
  double runner_measured_ns = 0;
  bool plan_hit = false;  // chosen plan beat the runner-up on measured time

  /// FaultSite index when the *final* failure was an injected fault, -1
  /// otherwise (the non-retried last attempt has no AttemptRecord, so the
  /// journal needs this to replay per-site fault counters exactly). Not
  /// part of the JSON rendering.
  int final_fault_site = -1;

  /// Host wall latency submit -> completion (live mode only; 0 in replay).
  double host_latency_ms = 0;

  /// One-line JSON. Deterministic fields only unless `include_host`.
  std::string to_json(bool include_host = false) const;
};

/// The SortSpec a (job, plan-dimension) pair executes as. Shared by the
/// local executor and the cluster worker so a remote attempt builds
/// exactly the spec the master would have run — the cross-process
/// determinism contract starts here.
sort::SortSpec sort_spec_for(const JobSpec& job, sort::Algo algo,
                             sort::Model model, int radix_bits);

}  // namespace dsm::svc
