// Seeded request-trace generation and a plain-text trace format.
//
// A trace is the unit of reproducibility for the service: the load
// generator derives a job stream deterministically from (seed, count, mix)
// via SplitMix64, and the same trace file replayed through
// SortService::replay yields byte-identical results for any worker count.
//
// Text format, one job per line (whitespace-separated, '#' comments):
//
//   id n nprocs dist seed force_algo force_model force_radix
//     [deadline_us priority [record]]
//
// where the three force_* fields are '-' when the planner chooses, and
// the optional trailing fields ('-' or absent = default) carry the
// virtual-time deadline in microseconds, the job priority, and the
// record type (absent = u32). Traces written before deadlines or record
// types existed (8- or 10-field lines) parse unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "svc/job.hpp"

namespace dsm::svc {

/// The job-mix a generated trace draws from (uniformly, per dimension).
struct LoadMix {
  std::vector<std::uint64_t> sizes{1u << 20, 4u << 20, 16u << 20};
  std::vector<int> procs{16, 32, 64};
  std::vector<keys::Dist> dists{std::begin(keys::kAllDists),
                                std::end(keys::kAllDists)};
  /// Virtual deadlines (us; 0 = none) and priorities drawn per job. The
  /// trivial defaults draw nothing, so the PRNG stream — and therefore
  /// every trace generated before deadlines existed — is unchanged.
  std::vector<std::uint64_t> deadlines_us{0};
  std::vector<int> priorities{0};
  /// Record types drawn per job; the trivial {u32} default draws nothing
  /// (same PRNG-preservation rule as deadlines/priorities).
  std::vector<keys::RecordType> records{keys::RecordType::kU32};
  /// Algorithms force-pinned per job (`JobSpec.force_algo`). The empty
  /// default draws nothing and leaves every job to the planner's menu —
  /// the PRNG-preservation rule again, so traces generated before the
  /// knob existed are byte-identical.
  std::vector<sort::Algo> algos{};
};

/// Generate `count` jobs deterministically from `seed` over `mix`.
/// Job ids are 0..count-1 in arrival order.
std::vector<JobSpec> make_trace(std::uint64_t seed, std::size_t count,
                                const LoadMix& mix);

std::string trace_to_text(std::span<const JobSpec> jobs);
std::vector<JobSpec> trace_from_text(const std::string& text);

void write_trace(const std::string& path, std::span<const JobSpec> jobs);
std::vector<JobSpec> read_trace(const std::string& path);

}  // namespace dsm::svc
