// Seeded request-trace generation and a plain-text trace format.
//
// A trace is the unit of reproducibility for the service: the load
// generator derives a job stream deterministically from (seed, count, mix)
// via SplitMix64, and the same trace file replayed through
// SortService::replay yields byte-identical results for any worker count.
//
// Text format, one job per line (whitespace-separated, '#' comments):
//
//   id n nprocs dist seed force_algo force_model force_radix
//     [deadline_us priority]
//
// where the three force_* fields are '-' when the planner chooses, and
// the two optional trailing fields ('-' or absent = default) carry the
// virtual-time deadline in microseconds and the job priority. Traces
// written before deadlines existed (8 fields per line) parse unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "svc/job.hpp"

namespace dsm::svc {

/// The job-mix a generated trace draws from (uniformly, per dimension).
struct LoadMix {
  std::vector<std::uint64_t> sizes{1u << 20, 4u << 20, 16u << 20};
  std::vector<int> procs{16, 32, 64};
  std::vector<keys::Dist> dists{std::begin(keys::kAllDists),
                                std::end(keys::kAllDists)};
  /// Virtual deadlines (us; 0 = none) and priorities drawn per job. The
  /// trivial defaults draw nothing, so the PRNG stream — and therefore
  /// every trace generated before deadlines existed — is unchanged.
  std::vector<std::uint64_t> deadlines_us{0};
  std::vector<int> priorities{0};
};

/// Generate `count` jobs deterministically from `seed` over `mix`.
/// Job ids are 0..count-1 in arrival order.
std::vector<JobSpec> make_trace(std::uint64_t seed, std::size_t count,
                                const LoadMix& mix);

std::string trace_to_text(std::span<const JobSpec> jobs);
std::vector<JobSpec> trace_from_text(const std::string& text);

void write_trace(const std::string& path, std::span<const JobSpec> jobs);
std::vector<JobSpec> read_trace(const std::string& path);

}  // namespace dsm::svc
