// Calibration/state checkpoints for the sort service.
//
// A snapshot is one CRC-framed blob holding everything recovery would
// otherwise have to reconstruct by replaying the journal from LSN 0:
// the planner's calibration cells (hexfloat, so the EWMA factors restore
// bit-exactly), the complete Metrics state, the set of job ids ever
// admitted (the idempotence filter), the jobs that were sitting in the
// queue at checkpoint time, and the journal LSN the snapshot covers.
// After loading a snapshot, recovery replays only the journal suffix —
// the segments the writer opened after the checkpoint.
//
// Snapshots are published atomically (tmp + fsync + rename + dir fsync),
// so a crash mid-checkpoint leaves the previous snapshot intact. A
// snapshot that fails its CRC is reported as kCorruptJournal and recovery
// falls back to replaying the full journal from scratch.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "svc/job.hpp"
#include "svc/metrics.hpp"
#include "svc/planner.hpp"

namespace dsm::svc {

struct SnapshotData {
  /// Journal LSN this snapshot covers: every record with lsn < this is
  /// already folded in; recovery replays records from this LSN on.
  std::uint64_t lsn = 0;
  /// Admission sequence counter at checkpoint time.
  std::uint64_t next_seq = 0;
  /// Every planner cell in export_cells order, tagged with its (algo,
  /// model). Serialized as the named "cells2" list; the decoder also
  /// accepts the legacy positional 8-cell layout from old snapshots.
  std::vector<Planner::CellState> planner_cells;
  /// Complete metrics registry state.
  Metrics::State metrics;
  /// Jobs admitted but still queued at checkpoint time (the checkpoint is
  /// taken between batches, so nothing is mid-execution). Their svc_seq
  /// and any recovered_plan ride along.
  std::vector<JobSpec> inflight;
  /// Every job id ever admitted (including terminal and quarantined
  /// jobs) — the duplicate-submit filter survives restarts.
  std::vector<std::uint64_t> known_ids;
};

/// Deterministic text payload (exposed for tests; the file adds framing).
std::string encode_snapshot(const SnapshotData& s);
/// Throws StatusError(kCorruptJournal) when the payload does not parse.
SnapshotData decode_snapshot(const std::string& payload);

/// Atomically publish `s` at `path`. `crash_hook`, when set, fires at
/// "snapshot.before-rename" and "snapshot.after-rename" (with s.lsn as
/// the seq argument) so the crash harness can kill the process around
/// the publish point. Returns kIoError on failure (previous snapshot
/// intact).
Status write_snapshot(
    const std::string& path, const SnapshotData& s,
    const std::function<void(const char*, std::uint64_t)>& crash_hook = {});

/// Load and verify a snapshot. kIoError when the file is absent or
/// unreadable (a fresh directory — not an error for recovery);
/// kCorruptJournal when present but damaged.
Result<SnapshotData> load_snapshot(const std::string& path);

}  // namespace dsm::svc
