#include "svc/faults.hpp"

#include "common/error.hpp"
#include "common/prng.hpp"

namespace dsm::svc {

const char* fault_site_name(FaultSite s) {
  switch (s) {
    case FaultSite::kKeygen: return "keygen";
    case FaultSite::kSortPhase: return "sort-phase";
    case FaultSite::kPlannerCalibration: return "planner-calibration";
    case FaultSite::kQueueAdmission: return "queue-admission";
    case FaultSite::kSerialize: return "serialize";
    case FaultSite::kCount: break;
  }
  return "?";
}

FaultInjector::FaultInjector(FaultConfig cfg) : cfg_(cfg) {
  DSM_REQUIRE(cfg_.rate >= 0.0 && cfg_.rate <= 1.0,
              "fault rate must be in [0, 1]");
}

bool FaultInjector::should_fire(FaultSite site, std::uint64_t job_id,
                                int attempt, std::uint64_t salt) const {
  if (!cfg_.enabled()) return false;
  if ((cfg_.sites & fault_site_bit(site)) == 0) return false;
  // One SplitMix64 draw keyed on the full evaluation identity. Seeding
  // (rather than hashing each field separately) keeps the decision a pure
  // function of the tuple with no per-injector state to synchronise.
  const std::uint64_t site_id = static_cast<std::uint64_t>(site) + 1;
  const std::uint64_t attempt_id = static_cast<std::uint64_t>(attempt);
  SplitMix64 rng(mix_seed(mix_seed(cfg_.seed, site_id),
                          mix_seed(mix_seed(job_id, attempt_id), salt)));
  // Compare the top 53 bits against the rate: exact for rate 0 and 1,
  // uniform to double precision in between.
  const double u =
      static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
  return u < cfg_.rate;
}

Status FaultInjector::fire(FaultSite site, std::uint64_t job_id,
                           int attempt) {
  return Status::fault_injected(
      std::string("injected fault at ") + fault_site_name(site) + " (job " +
      std::to_string(job_id) + ", attempt " + std::to_string(attempt) + ")");
}

std::uint64_t fault_salt(const char* name) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char* p = name; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 1099511628211ull;  // FNV-1a prime
  }
  return h;
}

}  // namespace dsm::svc
