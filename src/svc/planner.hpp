// Predictor-driven job planner with online EWMA calibration.
//
// plan() answers the paper's model-selection question per request: it
// enumerates every feasible (algorithm, model, radix) candidate for the
// job (honouring forced dimensions), prices each with the closed-form
// predictor — distribution-aware, unlike the n-and-p-only predict_best —
// and picks the cheapest *calibrated* estimate.
//
// Calibration closes the loop the static predictor cannot: the predictor
// is exact in BUSY/stream terms but approximate in contention and
// synchronisation, so its error is a roughly stable multiplicative bias
// per (algorithm, model) cell. observe() folds each completed job's
// measured/predicted ratio into an EWMA correction factor for its cell;
// plan() multiplies raw predictions by the current factor. As traffic
// flows, calibrated estimates converge onto the simulator and the
// planner's ranking sharpens — the service bench reports the error drop.
//
// Thread safety: plan() and observe() may be called concurrently; the
// factor table is mutex-guarded. Determinism: given the same sequence of
// plan/observe calls, all outputs are bit-identical (pure double
// arithmetic, no time or randomness).
#pragma once

#include <cstdint>
#include <iterator>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "sort/sort_api.hpp"
#include "svc/job.hpp"

namespace dsm::svc {

struct PlannerConfig {
  /// Radix sizes considered when the job does not pin one.
  std::vector<int> radixes{8, 11, 12};
  /// Weight of the newest observation in the EWMA (0 < alpha <= 1). The
  /// factor starts at 1.0 and eases toward each observed ratio; the small
  /// default deliberately favours a cell's long-run mean bias over
  /// recency, because the residual error drifts with (n, p) within a cell
  /// and chasing the latest job overcorrects (measured in
  /// bench/service_throughput).
  double ewma_alpha = 0.1;
  /// Master switch: disable to plan on raw predictions only (A/B runs).
  bool calibrate = true;
};

class Planner {
 public:
  explicit Planner(PlannerConfig cfg = {});

  /// Choose a plan for `job`; kInfeasible when no candidate fits (e.g.
  /// sample sort forced onto CC-SAS-NEW).
  Result<Plan> try_plan(const JobSpec& job) const;

  /// Throwing wrapper around try_plan (raises StatusError).
  Plan plan(const JobSpec& job) const;

  /// Fold a completed job's measured virtual time into the calibration
  /// state of the plan's (algo, model) cell.
  void observe(const Plan& plan, double measured_ns);

  /// Current correction factor for a cell (1.0 until first observation).
  double factor(sort::Algo algo, sort::Model model) const;
  std::uint64_t observations(sort::Algo algo, sort::Model model) const;

  /// Calibration table as a JSON array (deterministic).
  std::string calibration_json() const;

  /// Calibration state of one (algo, model) cell, tagged with the cell it
  /// belongs to so snapshots name cells instead of relying on positional
  /// layout (a snapshot written before an algorithm existed still lands
  /// its cells on the right slots).
  struct CellState {
    sort::Algo algo = sort::Algo::kRadix;
    sort::Model model = sort::Model::kCcSas;
    double factor = 1.0;
    std::uint64_t samples = 0;
  };

  /// Every (algo, model) cell in registry enumeration order (algo-major,
  /// model-minor — derived from kAlgoNames x kModelNames). The factor
  /// doubles round-trip exactly through import_cells (snapshots serialize
  /// them as hexfloat), which is what makes a recovered planner produce
  /// byte-identical plans.
  std::vector<CellState> export_cells() const;
  /// Restore cells by tag; untagged slots reset to the uncalibrated
  /// default. Accepts any subset, so old snapshots that predate an
  /// algorithm restore cleanly.
  void import_cells(const std::vector<CellState>& cells);

  const PlannerConfig& config() const { return cfg_; }

  /// Cell-matrix shape, derived from the enum registries.
  static constexpr std::size_t kNumAlgos = std::size(sort::kAlgoNames);
  static constexpr std::size_t kNumModels = std::size(sort::kModelNames);
  static constexpr std::size_t kNumCells = kNumAlgos * kNumModels;

 private:
  struct Cell {
    double factor = 1.0;
    std::uint64_t samples = 0;
  };

  static std::size_t cell_index(sort::Algo algo, sort::Model model);

  PlannerConfig cfg_;
  mutable std::mutex mu_;
  Cell cells_[kNumCells];
};

}  // namespace dsm::svc
