// Internal wire-format helpers shared by the journal and snapshot codecs.
//
// Both durability files carry text payloads inside CRC-framed binary
// blobs. The text grammar is deliberately tiny: whitespace-separated
// tokens, integers in decimal, doubles in hexfloat (so they round-trip
// bit-exactly — the calibration-identity guarantee depends on it), and
// strings as netstrings ("<len>:<bytes>", binary-safe). Malformed input
// always surfaces as StatusError(kCorruptJournal), never UB.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "common/status.hpp"

namespace dsm::svc::wire {

/// A record larger than this cannot be legitimate; a bigger length field
/// means the framing is damaged.
constexpr std::uint32_t kMaxRecordBytes = 16u << 20;

inline std::string dbl(double v) {
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

inline std::string netstr(const std::string& s) {
  return std::to_string(s.size()) + ":" + s;
}

inline void put_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

inline std::uint32_t get_u32le(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Whitespace-token / netstring parser over one payload. Every
/// malformation throws StatusError(kCorruptJournal).
class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  std::string tok() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of record");
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ' ') ++pos_;
    return s_.substr(start, pos_ - start);
  }

  std::uint64_t u64() {
    const std::string t = tok();
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
    if (errno != 0 || t.empty() || end != t.c_str() + t.size()) {
      fail("bad integer: " + t);
    }
    return static_cast<std::uint64_t>(v);
  }

  int i32() {
    const std::string t = tok();
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(t.c_str(), &end, 10);
    if (errno != 0 || t.empty() || end != t.c_str() + t.size()) {
      fail("bad integer: " + t);
    }
    return static_cast<int>(v);
  }

  double d() {
    const std::string t = tok();
    char* end = nullptr;
    const double v = std::strtod(t.c_str(), &end);
    if (t.empty() || end != t.c_str() + t.size()) fail("bad double: " + t);
    return v;
  }

  bool b() {
    const std::uint64_t v = u64();
    if (v > 1) fail("bad bool");
    return v == 1;
  }

  /// Next whitespace token without consuming it; "" at end of record.
  /// Lets decoders probe for versioned trailing fields (e.g. the job
  /// codec's ` rec <name>` run) without breaking on old-format payloads.
  std::string peek_tok() {
    skip_ws();
    std::size_t p = pos_;
    while (p < s_.size() && s_[p] != ' ') ++p;
    return s_.substr(pos_, p - pos_);
  }

  std::string str() {
    skip_ws();
    std::size_t len = 0;
    bool any = false;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      len = len * 10 + static_cast<std::size_t>(s_[pos_] - '0');
      if (len > kMaxRecordBytes) fail("netstring too long");
      ++pos_;
      any = true;
    }
    if (!any || pos_ >= s_.size() || s_[pos_] != ':') fail("bad netstring");
    ++pos_;  // ':'
    if (pos_ + len > s_.size()) fail("netstring overruns record");
    std::string out = s_.substr(pos_, len);
    pos_ += len;
    return out;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && s_[pos_] == ' ') ++pos_;
  }
  [[noreturn]] void fail(const std::string& why) {
    throw StatusError(Status::corrupt_journal("durability payload: " + why));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace dsm::svc::wire
