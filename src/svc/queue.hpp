// Bounded MPMC submission queue with admission control.
//
// Submitters never block: try_submit either enqueues the job or returns a
// rejection reason immediately (kRejectedFull when the queue is at
// capacity — backpressure the caller can act on — or kRejectedClosed once
// the service began draining). The server side pops jobs in FIFO batches;
// pop_batch blocks only while the queue is open and empty, and returns 0
// exactly once the queue is closed and drained.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "common/status.hpp"
#include "svc/job.hpp"

namespace dsm::svc {

enum class Admission {
  kAccepted,
  kRejectedFull,     // queue at capacity (backpressure)
  kRejectedClosed,   // service draining / shut down
  kRejectedInvalid,  // JobSpec::validate_status failed
  kRejectedFault,    // injected admission fault (transient front end)
};

const char* admission_name(Admission a);

/// The Status a client sees for each admission outcome (OK for
/// kAccepted). kRejectedFull and kRejectedFault are retryable — the same
/// submit may succeed moments later; the others are not.
Status admission_status(Admission a);

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  /// Enqueue or reject, never blocks.
  Admission try_submit(JobSpec job);

  /// Pop up to `max` jobs in FIFO order into `out` (appended). Blocks
  /// while the queue is open and empty; returns the number popped, 0 iff
  /// the queue is closed and fully drained.
  std::size_t pop_batch(std::size_t max, std::vector<JobSpec>& out);

  /// Stop admitting; wakes blocked poppers. Already-queued jobs remain
  /// poppable (graceful drain). Idempotent.
  void close();

  bool closed() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t depth() const;
  /// Largest depth ever observed (after an accepted submit).
  std::size_t high_water() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<JobSpec> q_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace dsm::svc
