// Bounded MPMC submission queue with admission control.
//
// Submitters never block: try_submit either enqueues the job or returns a
// rejection reason immediately (kRejectedFull when the queue is at
// capacity — backpressure the caller can act on — or kRejectedClosed once
// the service began draining). The server side pops jobs in FIFO batches;
// pop_batch blocks only while the queue is open and empty, and returns 0
// exactly once the queue is closed and drained.
//
// The queue is also the authority on admission sequence numbers: every
// accepted job gets the next seq, assigned under the queue lock so FIFO
// order and seq order coincide. Batch pops are aligned to the seq grid
// (a batch never straddles a seq % max == 0 boundary), which makes batch
// geometry a pure function of the admission sequence — the property crash
// recovery relies on to resume mid-stream with byte-identical plans.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/status.hpp"
#include "svc/job.hpp"

namespace dsm::svc {

enum class Admission {
  kAccepted,
  kRejectedFull,       // queue at capacity (backpressure)
  kRejectedClosed,     // service draining / shut down
  kRejectedInvalid,    // JobSpec::validate_status failed
  kRejectedFault,      // injected admission fault (transient front end)
  kRejectedDuplicate,  // durable mode: job id already admitted (idempotent
                       // resubmission after a crash; never re-run)
};

const char* admission_name(Admission a);

/// The Status a client sees for each admission outcome (OK for
/// kAccepted). kRejectedFull and kRejectedFault are retryable — the same
/// submit may succeed moments later; the others are not.
Status admission_status(Admission a);

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  /// Enqueue or reject, never blocks. On acceptance the job is stamped
  /// with the next admission sequence number (also stored in `*seq` when
  /// non-null).
  Admission try_submit(JobSpec job, std::uint64_t* seq = nullptr);

  /// Recovery-only: re-enqueue a recovered job, keeping its original
  /// svc_seq and ignoring the capacity bound (the recovered in-flight set
  /// can legitimately exceed capacity by up to one batch).
  void restore(JobSpec job);

  /// Pop up to `max` jobs in FIFO order into `out` (appended), never past
  /// the next seq % max == 0 boundary (aligned batch geometry). Blocks
  /// while the queue is open and empty; returns the number popped, 0 iff
  /// the queue is closed and fully drained.
  std::size_t pop_batch(std::size_t max, std::vector<JobSpec>& out);

  /// Stop admitting; wakes blocked poppers. Already-queued jobs remain
  /// poppable (graceful drain). Idempotent.
  void close();

  bool closed() const;
  std::size_t capacity() const { return capacity_; }
  std::size_t depth() const;
  /// Largest depth ever observed (after an accepted submit).
  std::size_t high_water() const;

  /// Admission sequence counter (next seq to be assigned). Recovery
  /// fast-forwards it past every seq the journal has seen.
  std::uint64_t next_seq() const;
  void set_next_seq(std::uint64_t seq);

  /// Copy of everything currently queued, in FIFO order (checkpointing:
  /// these are the in-flight jobs a snapshot must carry).
  std::vector<JobSpec> snapshot_jobs() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<JobSpec> q_;
  std::size_t high_water_ = 0;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace dsm::svc
