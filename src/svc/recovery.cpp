#include "svc/recovery.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "svc/journal.hpp"
#include "svc/snapshot.hpp"

namespace dsm::svc {
namespace {

/// Everything the journal knows about one admission seq, folded in LSN
/// order.
struct Track {
  JobSpec spec;
  bool have_spec = false;
  std::optional<Plan> plan;  // latest planned record (or readmitted plan)
  /// The job had begun processing since its last (re-)admission. Only the
  /// began job owning the journal's *latest* progress record is charged
  /// for the crash: durable mode is single-pipeline, so that is exactly
  /// the job being processed when the process died. Batchmates that
  /// finished earlier (executed, terminal not yet journaled) and queued
  /// jobs are innocent bystanders — they re-run without a crash charge.
  bool began = false;
  bool attempt_started = false;
  std::string last_mark;
  bool terminal = false;
  bool quarantined = false;
  std::vector<std::string> history;
};

std::string history_line(const JournalRecord& r) {
  std::ostringstream os;
  os << "lsn=" << r.lsn << ' ' << record_type_name(r.type);
  switch (r.type) {
    case RecordType::kAdmit:
      if (r.readmit) {
        os << " readmit crash_count=" << r.job.crash_count << " site="
           << r.job.crash_site;
      }
      break;
    case RecordType::kPlanned:
      os << ' ' << sort::algo_name(r.plan.algo) << '/'
         << sort::model_name(r.plan.model) << '/' << r.plan.radix_bits;
      break;
    case RecordType::kAttemptStart:
      os << ' ' << r.attempt;
      break;
    case RecordType::kMark:
      os << ' ' << r.site;
      break;
    case RecordType::kAttemptResult:
      os << ' ' << r.attempt << ": " << r.attempt_result.error;
      break;
    case RecordType::kTerminal:
      os << ' ' << job_status_name(r.result.status);
      break;
    case RecordType::kQuarantine:
      os << " crash_count=" << r.crash_count << " site=" << r.site;
      break;
    case RecordType::kDispatch:
      os << ' ' << r.attempt << " -> " << r.site;
      break;
  }
  return os.str();
}

/// The crash site charged to a job that was mid-flight when the process
/// died: the deepest progress its final incarnation journaled.
std::string crash_site_of(const Track& t) {
  if (t.attempt_started || !t.last_mark.empty()) {
    return "execute:" + (t.last_mark.empty() ? std::string("start")
                                             : t.last_mark);
  }
  return "planned";
}

}  // namespace

std::string snapshot_path(const std::string& dir) {
  return dir + "/snapshot.bin";
}

std::string quarantine_path(const std::string& dir) {
  return dir + "/quarantine.jsonl";
}

std::string RecoveryReport::to_json() const {
  std::ostringstream os;
  os << "{\"performed\": " << (performed ? "true" : "false")
     << ", \"snapshot_loaded\": " << (snapshot_loaded ? "true" : "false")
     << ", \"snapshot_corrupt\": " << (snapshot_corrupt ? "true" : "false")
     << ", \"journal_records\": " << journal_records
     << ", \"torn_tails\": " << torn_tails
     << ", \"corrupt_records\": " << corrupt_records
     << ", \"replayed_terminal\": " << replayed_terminal
     << ", \"requeued\": " << requeued
     << ", \"quarantined\": " << quarantined << "}";
  return os.str();
}

RecoveryOutcome recover_dir(const std::string& dir, int quarantine_threshold,
                            Planner& planner, Metrics& metrics) {
  RecoveryOutcome out;

  SnapshotData snap;
  bool have_snap = false;
  {
    Result<SnapshotData> loaded = load_snapshot(snapshot_path(dir));
    if (loaded.ok()) {
      snap = std::move(loaded).value();
      have_snap = true;
      out.report.snapshot_loaded = true;
    } else if (loaded.status().code() == StatusCode::kCorruptJournal) {
      // Fall back to a full journal replay; how complete that is depends
      // on whether pre-snapshot segments were pruned (the crash harness
      // keeps them). Either way the damage is surfaced, not hidden.
      out.report.snapshot_corrupt = true;
    }
    // kIoError (no snapshot yet) is the normal fresh-directory case.
  }

  const std::vector<std::string> segments = list_segments(dir);
  std::vector<JournalRecord> records;
  std::uint64_t torn = 0;
  std::uint64_t corrupt = 0;
  for (const std::string& seg : segments) {
    SegmentScan scan = read_segment(seg);
    if (scan.torn_tail) ++torn;
    corrupt += scan.corrupt;
    for (JournalRecord& r : scan.records) {
      if (have_snap && r.lsn < snap.lsn) continue;  // folded in already
      records.push_back(std::move(r));
    }
  }
  std::sort(records.begin(), records.end(),
            [](const JournalRecord& a, const JournalRecord& b) {
              return a.lsn < b.lsn;
            });

  out.report.performed = have_snap || out.report.snapshot_corrupt ||
                         !segments.empty() || !records.empty();
  if (!out.report.performed) {
    out.next_lsn = 0;
    out.next_seq = 0;
    return out;  // fresh directory: touch nothing
  }

  // Seed state from the snapshot.
  std::set<std::uint64_t> known_ids;
  std::uint64_t next_lsn = 0;
  std::uint64_t next_seq = 0;
  std::map<std::uint64_t, Track> tracks;  // seq-ordered
  if (have_snap) {
    planner.import_cells(snap.planner_cells);
    metrics.import_state(snap.metrics);
    known_ids.insert(snap.known_ids.begin(), snap.known_ids.end());
    next_lsn = snap.lsn;
    next_seq = snap.next_seq;
    for (JobSpec& j : snap.inflight) {
      Track& t = tracks[j.svc_seq];
      t.spec = std::move(j);
      t.have_spec = true;
      t.plan = t.spec.recovered_plan;
      t.history.push_back("snapshot inflight");
    }
  }

  // Replay the journal suffix in LSN order.
  std::uint64_t last_exec_seq = 0;
  bool have_last_exec = false;
  for (const JournalRecord& r : records) {
    next_lsn = std::max(next_lsn, r.lsn + 1);
    next_seq = std::max(next_seq, r.seq + 1);
    ++out.report.journal_records;
    if (r.type == RecordType::kPlanned ||
        r.type == RecordType::kAttemptStart ||
        r.type == RecordType::kDispatch ||
        r.type == RecordType::kMark || r.type == RecordType::kAttemptResult) {
      last_exec_seq = r.seq;  // highest-LSN progress record wins
      have_last_exec = true;
    }
    Track& t = tracks[r.seq];
    t.history.push_back(history_line(r));
    switch (r.type) {
      case RecordType::kAdmit:
        if (r.readmit) {
          // A re-admission separates incarnations: progress journaled
          // before it belongs to a dead incarnation, and the record
          // carries the accumulated crash bookkeeping.
          t.spec = r.job;
          t.have_spec = true;
          t.plan = r.job.recovered_plan;
          t.began = false;
          t.attempt_started = false;
          t.last_mark.clear();
        } else {
          if (!t.have_spec) {
            t.spec = r.job;
            t.have_spec = true;
          }
          // The original admission is counted exactly once; the record
          // can land after the server's planned record for the same job
          // (client and server thread race), which must not reset the
          // progress tracking above.
          metrics.on_admission(Admission::kAccepted);
        }
        known_ids.insert(r.job.id);
        break;
      case RecordType::kPlanned:
        t.plan = r.plan;
        t.began = true;
        break;
      case RecordType::kAttemptStart:
        t.attempt_started = true;
        t.began = true;
        break;
      case RecordType::kMark:
        t.last_mark = r.site;
        t.began = true;
        break;
      case RecordType::kAttemptResult:
        t.began = true;
        break;
      case RecordType::kTerminal: {
        t.terminal = true;
        known_ids.insert(r.result.id);
        // Replay the completion exactly as the live path applied it:
        // per-site fault counts, the planner observation, the metrics
        // completion — in LSN order, which is the original batch order.
        for (const AttemptRecord& a : r.result.attempts) {
          if (a.fault_site >= 0 && a.fault_site < kFaultSiteCount) {
            metrics.on_fault(static_cast<FaultSite>(a.fault_site));
          }
        }
        if (r.result.final_fault_site >= 0 &&
            r.result.final_fault_site < kFaultSiteCount) {
          metrics.on_fault(
              static_cast<FaultSite>(r.result.final_fault_site));
        }
        if ((r.result.status == JobStatus::kOk ||
             r.result.status == JobStatus::kDeadlineMiss) &&
            r.result.measured_ns > 0) {
          planner.observe(r.result.plan, r.result.measured_ns);
        }
        metrics.on_complete(r.result);
        ++out.report.replayed_terminal;
        break;
      }
      case RecordType::kQuarantine:
        t.quarantined = true;
        known_ids.insert(r.job.id);
        break;
      case RecordType::kDispatch:
        // A dispatch that never acked is exactly the attempt-start case:
        // the attempt had begun somewhere when the master died, so the
        // job is re-driven (and charged if it owns the latest progress).
        t.attempt_started = true;
        t.began = true;
        break;
    }
  }
  if (torn > 0) {
    out.report.torn_tails = torn;
    for (std::uint64_t i = 0; i < torn; ++i) metrics.on_journal_torn_tail();
  }
  if (corrupt > 0) {
    out.report.corrupt_records = corrupt;
    metrics.on_journal_corrupt(corrupt);
  }

  // Decide each unfinished job's fate, in seq order.
  for (auto& [seq, t] : tracks) {
    if (t.terminal || t.quarantined || !t.have_spec) continue;
    JobSpec job = t.spec;
    if (t.began && have_last_exec && seq == last_exec_seq) {
      const std::string site = crash_site_of(t);
      const int count = site == job.crash_site ? job.crash_count + 1 : 1;
      job.crash_count = count;
      job.crash_site = site;
      if (count >= quarantine_threshold) {
        QuarantineEntry q;
        q.job = std::move(job);
        q.crash_count = count;
        q.crash_site = site;
        q.history = std::move(t.history);
        out.quarantine.push_back(std::move(q));
        ++out.report.quarantined;
        continue;
      }
    }
    if (t.plan) job.recovered_plan = t.plan;
    out.requeue.push_back(std::move(job));
  }
  out.report.requeued = out.requeue.size();

  out.known_ids.assign(known_ids.begin(), known_ids.end());
  out.next_lsn = next_lsn;
  out.next_seq = next_seq;
  metrics.on_recovery(out.report.replayed_terminal, out.report.requeued,
                      out.report.quarantined);
  return out;
}

}  // namespace dsm::svc
