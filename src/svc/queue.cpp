#include "svc/queue.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace dsm::svc {

const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kRejectedFull: return "rejected-full";
    case Admission::kRejectedClosed: return "rejected-closed";
    case Admission::kRejectedInvalid: return "rejected-invalid";
    case Admission::kRejectedFault: return "rejected-fault";
  }
  return "?";
}

Status admission_status(Admission a) {
  switch (a) {
    case Admission::kAccepted: return Status();
    case Admission::kRejectedFull:
      return Status::resource_exhausted("queue at capacity");
    case Admission::kRejectedClosed:
      return Status::unavailable("service draining");
    case Admission::kRejectedInvalid:
      return Status::invalid_argument("job spec invalid");
    case Admission::kRejectedFault:
      return Status::fault_injected("injected admission fault");
  }
  return Status::internal("unknown admission outcome");
}

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  DSM_REQUIRE(capacity >= 1, "queue capacity >= 1");
}

Admission JobQueue::try_submit(JobSpec job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Admission::kRejectedClosed;
    if (q_.size() >= capacity_) return Admission::kRejectedFull;
    q_.push_back(std::move(job));
    high_water_ = std::max(high_water_, q_.size());
  }
  cv_.notify_one();
  return Admission::kAccepted;
}

std::size_t JobQueue::pop_batch(std::size_t max, std::vector<JobSpec>& out) {
  DSM_REQUIRE(max >= 1, "pop_batch max >= 1");
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
  const std::size_t take = std::min(max, q_.size());
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  return take;
}

void JobQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool JobQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t JobQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

std::size_t JobQueue::high_water() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

}  // namespace dsm::svc
