#include "svc/queue.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace dsm::svc {

const char* admission_name(Admission a) {
  switch (a) {
    case Admission::kAccepted: return "accepted";
    case Admission::kRejectedFull: return "rejected-full";
    case Admission::kRejectedClosed: return "rejected-closed";
    case Admission::kRejectedInvalid: return "rejected-invalid";
    case Admission::kRejectedFault: return "rejected-fault";
    case Admission::kRejectedDuplicate: return "rejected-duplicate";
  }
  return "?";
}

Status admission_status(Admission a) {
  switch (a) {
    case Admission::kAccepted: return Status();
    case Admission::kRejectedFull:
      return Status::resource_exhausted("queue at capacity");
    case Admission::kRejectedClosed:
      return Status::unavailable("service draining");
    case Admission::kRejectedInvalid:
      return Status::invalid_argument("job spec invalid");
    case Admission::kRejectedFault:
      return Status::fault_injected("injected admission fault");
    case Admission::kRejectedDuplicate:
      return Status::invalid_argument(
          "job id already admitted (idempotent resubmission)");
  }
  return Status::internal("unknown admission outcome");
}

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  DSM_REQUIRE(capacity >= 1, "queue capacity >= 1");
}

Admission JobQueue::try_submit(JobSpec job, std::uint64_t* seq) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Admission::kRejectedClosed;
    if (q_.size() >= capacity_) return Admission::kRejectedFull;
    job.svc_seq = next_seq_++;
    if (seq != nullptr) *seq = job.svc_seq;
    q_.push_back(std::move(job));
    high_water_ = std::max(high_water_, q_.size());
  }
  cv_.notify_one();
  return Admission::kAccepted;
}

void JobQueue::restore(JobSpec job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    DSM_REQUIRE(!closed_, "restore into a closed queue");
    q_.push_back(std::move(job));  // svc_seq already assigned pre-crash
    high_water_ = std::max(high_water_, q_.size());
  }
  cv_.notify_one();
}

std::size_t JobQueue::pop_batch(std::size_t max, std::vector<JobSpec>& out) {
  DSM_REQUIRE(max >= 1, "pop_batch max >= 1");
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !q_.empty(); });
  if (q_.empty()) return 0;
  // Align to the seq grid: a batch never crosses a seq % max == 0
  // boundary, so batch geometry depends only on the admission sequence —
  // not on how full the queue happened to be — and crash recovery resumes
  // mid-stream with the geometry the uncrashed run would have used.
  const std::size_t aligned =
      max - static_cast<std::size_t>(q_.front().svc_seq % max);
  const std::size_t take = std::min(aligned, q_.size());
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  return take;
}

void JobQueue::close() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool JobQueue::closed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t JobQueue::depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

std::size_t JobQueue::high_water() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

std::uint64_t JobQueue::next_seq() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

void JobQueue::set_next_seq(std::uint64_t seq) {
  const std::lock_guard<std::mutex> lock(mu_);
  next_seq_ = seq;
}

std::vector<JobSpec> JobQueue::snapshot_jobs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return std::vector<JobSpec>(q_.begin(), q_.end());
}

}  // namespace dsm::svc
