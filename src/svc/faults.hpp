// Deterministic fault injection for the sort service.
//
// The robustness machinery (retry, shedding, error isolation) is only
// trustworthy if its failure paths are exercised, and only debuggable if
// a failing run can be replayed exactly. This harness injects faults at
// five named sites of the service pipeline, with firing decisions that
// are a pure function of (config seed, site, job id, attempt, salt) —
// independent of thread schedule, worker count, and wall clock — so a
// seeded fault matrix is part of the replay determinism contract: the
// same trace plus the same FaultConfig produces byte-identical results
// at any worker count.
//
// Sites and the layer that polls them:
//   kKeygen             sort driver, before input generation
//   kSortPhase          every kernel phase mark (salted by phase name,
//                       so different phases of one attempt fire
//                       independently)
//   kPlannerCalibration service batch loop, around Planner::try_plan
//   kQueueAdmission     SortService::submit, after validation
//   kSerialize          executor, before the result is recorded
//
// A fired site yields Status::fault_injected (retryable): the executor's
// backoff loop re-attempts it with the attempt number folded into the
// hash, so a job survives unless the fault rate is high enough to exhaust
// max_attempts — exactly the transient-failure model the retry policy is
// designed for. Admission faults are not retried (the client sees the
// rejection), modelling a flaky front end.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace dsm::svc {

enum class FaultSite {
  kKeygen,
  kSortPhase,
  kPlannerCalibration,
  kQueueAdmission,
  kSerialize,
  kCount,  // sentinel: number of sites
};

constexpr int kFaultSiteCount = static_cast<int>(FaultSite::kCount);

const char* fault_site_name(FaultSite s);

/// Bit for `site` in FaultConfig::sites.
constexpr std::uint32_t fault_site_bit(FaultSite s) {
  return std::uint32_t{1} << static_cast<int>(s);
}

constexpr std::uint32_t kAllFaultSites =
    (std::uint32_t{1} << kFaultSiteCount) - 1;

struct FaultConfig {
  /// 0 disables injection entirely (the production default). Any nonzero
  /// seed defines one reproducible fault universe.
  std::uint64_t seed = 0;
  /// Probability in [0, 1] that an armed site fires at each evaluation.
  double rate = 0.0;
  /// Bitmask of armed sites (fault_site_bit); default: all.
  std::uint32_t sites = kAllFaultSites;

  bool enabled() const { return seed != 0 && rate > 0.0; }
};

/// Stateless decision function over a FaultConfig; copies are cheap and
/// concurrent should_fire calls are safe (pure arithmetic).
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultConfig cfg);

  /// Deterministically decide whether `site` fires for (job, attempt).
  /// `salt` distinguishes multiple evaluations of the same site within
  /// one attempt (the sort-phase site salts with the phase name hash).
  bool should_fire(FaultSite site, std::uint64_t job_id, int attempt,
                   std::uint64_t salt = 0) const;

  /// The status a fired site reports:
  /// "injected fault at <site> (job <id>, attempt <k>)".
  static Status fire(FaultSite site, std::uint64_t job_id, int attempt);

  const FaultConfig& config() const { return cfg_; }

 private:
  FaultConfig cfg_;
};

/// FNV-1a over a C string — the salt for named evaluation points.
std::uint64_t fault_salt(const char* name);

}  // namespace dsm::svc
