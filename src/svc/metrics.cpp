#include "svc/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/bits.hpp"
#include "common/error.hpp"
#include "common/table.hpp"

namespace dsm::svc {
namespace {

double mean_of(const std::vector<double>& v, std::size_t begin,
               std::size_t end) {
  if (end <= begin) return 0;
  double sum = 0;
  for (std::size_t i = begin; i < end; ++i) sum += v[i];
  return sum / static_cast<double>(end - begin);
}

}  // namespace

void Metrics::on_admission(Admission a) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++c_.submitted;
  switch (a) {
    case Admission::kAccepted: ++c_.accepted; break;
    case Admission::kRejectedFull: ++c_.rejected_full; break;
    case Admission::kRejectedClosed: ++c_.rejected_closed; break;
    case Admission::kRejectedInvalid: ++c_.rejected_invalid; break;
    case Admission::kRejectedFault: ++c_.rejected_fault; break;
    case Admission::kRejectedDuplicate: ++c_.rejected_duplicate; break;
  }
}

void Metrics::on_journal_torn_tail() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++d_.journal_torn_tail;
}

void Metrics::on_journal_corrupt(std::uint64_t records) {
  const std::lock_guard<std::mutex> lock(mu_);
  d_.journal_corrupt += records;
}

void Metrics::on_recovery(std::uint64_t replayed_terminal,
                          std::uint64_t requeued, std::uint64_t quarantined) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++d_.recoveries;
  d_.replayed_terminal += replayed_terminal;
  d_.requeued += requeued;
  d_.quarantined += quarantined;
}

void Metrics::on_snapshot() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++d_.snapshots;
}

void Metrics::on_complete(const JobResult& r) {
  const std::lock_guard<std::mutex> lock(mu_);
  // Retry accounting applies to every fate: a job may retry twice and
  // then be aborted by its deadline, or exhaust its attempts and fail.
  const std::size_t prior_failures = r.attempts.size();
  c_.retry_attempts += prior_failures;
  retry_hist_[std::min(prior_failures,
                       static_cast<std::size_t>(kRetryBuckets - 1))]++;
  if (r.status == JobStatus::kFailed) {
    ++c_.failed;
    return;
  }
  if (r.status == JobStatus::kShed) {
    ++c_.shed;
    return;
  }
  // kOk and kDeadlineMiss both ran to completion with a measured time.
  ++c_.completed;
  if (r.status == JobStatus::kDeadlineMiss) ++c_.deadline_miss;
  if (r.status == JobStatus::kOk && prior_failures > 0) {
    ++c_.retry_successes;
  }
  if (r.measured_ns > 0) {  // mid-run deadline aborts have no measurement
    const auto us = static_cast<std::uint64_t>(
        std::max(0.0, std::floor(r.measured_ns / 1e3)));
    const int bucket = std::min(us == 0 ? 0 : bit_width_u64(us) - 1,
                                kLatencyBuckets - 1);
    ++hist_[bucket];
  }
  if (r.audited) {
    ++c_.audited;
    if (r.plan_hit) ++c_.plan_hits;
  }
  if (r.plan.predicted_raw_ns > 0 && r.measured_ns > 0) {
    rel_err_raw_.push_back(
        std::abs(r.plan.predicted_raw_ns - r.measured_ns) / r.measured_ns);
    rel_err_cal_.push_back(
        std::abs(r.plan.predicted_ns - r.measured_ns) / r.measured_ns);
  }
}

void Metrics::on_remote_dispatch() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++cl_.dispatches;
}

void Metrics::on_remote_ack(double host_us) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++cl_.acks;
  const auto us =
      static_cast<std::uint64_t>(std::max(0.0, std::floor(host_us)));
  const int bucket = std::min(us == 0 ? 0 : bit_width_u64(us) - 1,
                              kLatencyBuckets - 1);
  ++ack_hist_[bucket];
}

void Metrics::on_redispatch() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++cl_.redispatches;
}

void Metrics::on_worker_spawn(bool respawn) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++cl_.workers_spawned;
  if (respawn) ++cl_.workers_respawned;
}

void Metrics::on_worker_death() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++cl_.worker_deaths;
}

void Metrics::on_worker_retire() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++cl_.workers_retired;
}

void Metrics::on_worker_gauge(int free, int working, int draining, int dead,
                              int quarantined) {
  const std::lock_guard<std::mutex> lock(mu_);
  cl_.gauge_free = static_cast<std::uint64_t>(std::max(0, free));
  cl_.gauge_working = static_cast<std::uint64_t>(std::max(0, working));
  cl_.gauge_draining = static_cast<std::uint64_t>(std::max(0, draining));
  cl_.gauge_dead = static_cast<std::uint64_t>(std::max(0, dead));
  cl_.gauge_quarantined = static_cast<std::uint64_t>(std::max(0, quarantined));
  cl_.peak_alive =
      std::max(cl_.peak_alive, cl_.gauge_free + cl_.gauge_working);
}

void Metrics::on_heartbeat() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++cl_.heartbeats;
}

void Metrics::on_hedge_issued() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++cl_.hedges_issued;
}

void Metrics::on_hedge_won() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++cl_.hedges_won;
}

void Metrics::on_hedge_loser() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++cl_.hedge_losers;
}

void Metrics::on_integrity_violation() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++cl_.integrity_violations;
}

void Metrics::on_worker_quarantine() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++cl_.workers_quarantined;
}

void Metrics::on_degraded_append(std::uint64_t records) {
  const std::lock_guard<std::mutex> lock(mu_);
  dh_.degraded_appends += records;
}

void Metrics::on_non_durable_jobs(std::uint64_t jobs) {
  const std::lock_guard<std::mutex> lock(mu_);
  dh_.non_durable_jobs += jobs;
}

void Metrics::on_durability_heal() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++dh_.heals;
}

void Metrics::on_snapshot_failure() {
  const std::lock_guard<std::mutex> lock(mu_);
  ++dh_.snapshot_failures;
}

void Metrics::on_fault(FaultSite site) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++faults_[static_cast<std::size_t>(site)];
}

void Metrics::note_queue_depth(std::size_t depth) {
  const std::lock_guard<std::mutex> lock(mu_);
  depth_high_water_ = std::max(depth_high_water_, depth);
}

Metrics::Counters Metrics::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return c_;
}

Metrics::Durability Metrics::durability() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return d_;
}

Metrics::Cluster Metrics::cluster() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cl_;
}

Metrics::DiskHealth Metrics::disk_health() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dh_;
}

Metrics::State Metrics::export_state() const {
  const std::lock_guard<std::mutex> lock(mu_);
  State s;
  s.counters = c_;
  s.durability = d_;
  s.depth_high_water = depth_high_water_;
  s.latency_hist.assign(hist_, hist_ + kLatencyBuckets);
  s.retry_hist.assign(retry_hist_, retry_hist_ + kRetryBuckets);
  s.faults.assign(faults_, faults_ + kFaultSiteCount);
  s.rel_err_raw = rel_err_raw_;
  s.rel_err_cal = rel_err_cal_;
  return s;
}

void Metrics::import_state(const State& s) {
  DSM_REQUIRE(s.latency_hist.size() == kLatencyBuckets &&
                  s.retry_hist.size() == kRetryBuckets &&
                  s.faults.size() == kFaultSiteCount,
              "metrics snapshot histogram sizes mismatch");
  const std::lock_guard<std::mutex> lock(mu_);
  c_ = s.counters;
  d_ = s.durability;
  depth_high_water_ = s.depth_high_water;
  std::copy(s.latency_hist.begin(), s.latency_hist.end(), hist_);
  std::copy(s.retry_hist.begin(), s.retry_hist.end(), retry_hist_);
  std::copy(s.faults.begin(), s.faults.end(), faults_);
  rel_err_raw_ = s.rel_err_raw;
  rel_err_cal_ = s.rel_err_cal;
}

Metrics::Accuracy Metrics::accuracy() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Accuracy a;
  a.count = rel_err_cal_.size();
  a.mean_rel_err_raw = mean_of(rel_err_raw_, 0, rel_err_raw_.size());
  a.mean_rel_err_cal = mean_of(rel_err_cal_, 0, rel_err_cal_.size());
  const std::size_t half = rel_err_cal_.size() / 2;
  a.first_half_cal = mean_of(rel_err_cal_, 0, half);
  a.second_half_cal = mean_of(rel_err_cal_, half, rel_err_cal_.size());
  return a;
}

std::size_t Metrics::queue_depth_high_water() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return depth_high_water_;
}

std::vector<std::uint64_t> Metrics::latency_histogram() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::uint64_t>(hist_, hist_ + kLatencyBuckets);
}

std::vector<std::uint64_t> Metrics::retry_histogram() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::uint64_t>(retry_hist_, retry_hist_ + kRetryBuckets);
}

std::vector<std::uint64_t> Metrics::fault_counts() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return std::vector<std::uint64_t>(faults_, faults_ + kFaultSiteCount);
}

std::string Metrics::to_json() const {
  const Counters c = counters();
  const Accuracy a = accuracy();
  const auto hist = latency_histogram();
  std::ostringstream os;
  os << "{\"counters\": {\"submitted\": " << c.submitted
     << ", \"accepted\": " << c.accepted
     << ", \"rejected_full\": " << c.rejected_full
     << ", \"rejected_closed\": " << c.rejected_closed
     << ", \"rejected_invalid\": " << c.rejected_invalid
     << ", \"rejected_fault\": " << c.rejected_fault
     << ", \"rejected_duplicate\": " << c.rejected_duplicate
     << ", \"completed\": " << c.completed << ", \"failed\": " << c.failed
     << ", \"shed\": " << c.shed
     << ", \"deadline_miss\": " << c.deadline_miss
     << ", \"retry_attempts\": " << c.retry_attempts
     << ", \"retry_successes\": " << c.retry_successes
     << "},\n \"queue_depth_high_water\": " << queue_depth_high_water()
     << ",\n \"plan_audit\": {\"audited\": " << c.audited
     << ", \"plan_hits\": " << c.plan_hits << ", \"hit_rate\": "
     << fmt_fixed(c.audited > 0 ? static_cast<double>(c.plan_hits) /
                                      static_cast<double>(c.audited)
                                : 0.0,
                  4)
     << "},\n \"accuracy\": {\"count\": " << a.count
     << ", \"mean_rel_err_raw\": " << fmt_fixed(a.mean_rel_err_raw, 4)
     << ", \"mean_rel_err_calibrated\": " << fmt_fixed(a.mean_rel_err_cal, 4)
     << ", \"first_half_calibrated\": " << fmt_fixed(a.first_half_cal, 4)
     << ", \"second_half_calibrated\": " << fmt_fixed(a.second_half_cal, 4)
     << "},\n \"faults_by_site\": {";
  const auto faults = fault_counts();
  for (int i = 0; i < kFaultSiteCount; ++i) {
    os << (i ? ", " : "") << "\"" << fault_site_name(static_cast<FaultSite>(i))
       << "\": " << faults[static_cast<std::size_t>(i)];
  }
  const Durability d = durability();
  os << "},\n \"durability\": {\"journal_torn_tail\": " << d.journal_torn_tail
     << ", \"journal_corrupt\": " << d.journal_corrupt
     << ", \"recoveries\": " << d.recoveries
     << ", \"replayed_terminal\": " << d.replayed_terminal
     << ", \"requeued\": " << d.requeued
     << ", \"quarantined\": " << d.quarantined
     << ", \"snapshots\": " << d.snapshots;
  os << "},\n \"retry_histogram\": [";
  const auto retries = retry_histogram();
  for (int i = 0; i < kRetryBuckets; ++i) {
    os << (i ? ", " : "") << retries[static_cast<std::size_t>(i)];
  }
  os << "],\n \"latency_virtual_us_log2_buckets\": [";
  for (int i = 0; i < kLatencyBuckets; ++i) {
    os << (i ? ", " : "") << hist[static_cast<std::size_t>(i)];
  }
  os << "]}";
  return os.str();
}

std::string Metrics::cluster_json() const {
  const Cluster cl = cluster();
  std::uint64_t hist[kLatencyBuckets];
  {
    const std::lock_guard<std::mutex> lock(mu_);
    std::copy(ack_hist_, ack_hist_ + kLatencyBuckets, hist);
  }
  std::ostringstream os;
  os << "{\"dispatches\": " << cl.dispatches << ", \"acks\": " << cl.acks
     << ", \"redispatches\": " << cl.redispatches
     << ", \"worker_deaths\": " << cl.worker_deaths
     << ", \"workers_spawned\": " << cl.workers_spawned
     << ", \"workers_respawned\": " << cl.workers_respawned
     << ", \"workers_retired\": " << cl.workers_retired
     << ",\n \"health\": {\"heartbeats\": " << cl.heartbeats
     << ", \"hedges_issued\": " << cl.hedges_issued
     << ", \"hedges_won\": " << cl.hedges_won
     << ", \"hedge_losers\": " << cl.hedge_losers
     << ", \"integrity_violations\": " << cl.integrity_violations
     << ", \"workers_quarantined\": " << cl.workers_quarantined
     << "},\n \"workers\": {\"free\": " << cl.gauge_free
     << ", \"working\": " << cl.gauge_working
     << ", \"draining\": " << cl.gauge_draining
     << ", \"dead\": " << cl.gauge_dead
     << ", \"quarantined\": " << cl.gauge_quarantined
     << ", \"peak_alive\": " << cl.peak_alive
     << "},\n \"dispatch_ack_host_us_log2_buckets\": [";
  for (int i = 0; i < kLatencyBuckets; ++i) {
    os << (i ? ", " : "") << hist[i];
  }
  os << "]}";
  return os.str();
}

std::string Metrics::disk_json() const {
  const DiskHealth dh = disk_health();
  std::ostringstream os;
  os << "{\"degraded_appends\": " << dh.degraded_appends
     << ", \"non_durable_jobs\": " << dh.non_durable_jobs
     << ", \"heals\": " << dh.heals
     << ", \"snapshot_failures\": " << dh.snapshot_failures << "}";
  return os.str();
}

std::string Metrics::cluster_csv() const {
  std::uint64_t hist[kLatencyBuckets];
  {
    const std::lock_guard<std::mutex> lock(mu_);
    std::copy(ack_hist_, ack_hist_ + kLatencyBuckets, hist);
  }
  std::ostringstream os;
  os << "bucket_lo_us,bucket_hi_us,count\n";
  for (int i = 0; i < kLatencyBuckets; ++i) {
    const std::uint64_t lo = i == 0 ? 0 : std::uint64_t{1} << i;
    os << lo;
    if (i == kLatencyBuckets - 1) {
      os << ",inf";
    } else {
      os << "," << (std::uint64_t{1} << (i + 1));
    }
    os << "," << hist[i] << "\n";
  }
  return os.str();
}

std::string Metrics::histogram_csv() const {
  const auto hist = latency_histogram();
  std::ostringstream os;
  os << "bucket_lo_us,bucket_hi_us,count\n";
  for (int i = 0; i < kLatencyBuckets; ++i) {
    const std::uint64_t lo = i == 0 ? 0 : std::uint64_t{1} << i;
    os << lo;
    if (i == kLatencyBuckets - 1) {
      os << ",inf";
    } else {
      os << "," << (std::uint64_t{1} << (i + 1));
    }
    os << "," << hist[static_cast<std::size_t>(i)] << "\n";
  }
  return os.str();
}

}  // namespace dsm::svc
