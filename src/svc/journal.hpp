// Append-only write-ahead journal for the sort service.
//
// Every service state transition that durability cares about becomes one
// journal record: a job was admitted (journaled before the client learns
// the job was accepted), a plan was chosen, an execution attempt started,
// execution passed a named progress mark, an attempt failed, a job reached
// its terminal state, or a job was quarantined. Records are framed as
//
//   [u32 payload_len][u32 crc32(payload)][payload bytes]
//
// little-endian, with a text payload ("<lsn> <type> <fields...>"; doubles
// in hexfloat so they round-trip bit-exactly, strings netstring-framed).
// LSNs are assigned under the writer lock, so LSN order equals file order.
//
// Segments are append-only files named journal-<first-lsn>.wal; the
// writer rotates to a fresh segment after each snapshot (and when a
// segment exceeds segment_max_bytes), and recovery replays segments in
// first-lsn order. A crash can leave at most one torn record at the tail
// of the newest segment — the reader tolerates that (the record's effects
// were never acknowledged) but treats a CRC mismatch on a fully-present
// record as corruption: reading stops there and the damage is surfaced
// via Metrics (kCorruptJournal), because framing cannot be trusted past a
// damaged record.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "svc/job.hpp"

namespace dsm::svc {

enum class RecordType {
  kAdmit,          // job accepted into the queue (possibly a re-admission)
  kPlanned,        // planner chose a plan for the job
  kAttemptStart,   // execution attempt N began
  kMark,           // execution passed a named progress site
  kAttemptResult,  // attempt N failed (successes are implied by kTerminal)
  kTerminal,       // job finished: ok / failed / shed / deadline-miss
  kQuarantine,     // job refused re-admission after repeated crashes
  kDispatch,       // attempt N handed to a cluster worker (PR 7)
};
constexpr int kRecordTypeCount = 8;

const char* record_type_name(RecordType t);
RecordType record_type_from_name(const std::string& name);

/// One journal record. A flat struct: which fields are meaningful depends
/// on `type` (the encoder only serializes the fields its type owns).
struct JournalRecord {
  std::uint64_t lsn = 0;  // assigned by the writer; readers get it back
  RecordType type = RecordType::kAdmit;
  std::uint64_t seq = 0;  // admission seq of the job (every record type)

  // kAdmit: the full client-visible spec plus crash bookkeeping. A
  // readmit record (recovery re-admitting an in-flight job) additionally
  // carries the pre-crash plan when one was journaled.
  JobSpec job;
  bool readmit = false;

  // kPlanned (and kTerminal, where the plan is embedded so terminal
  // replay needs no cross-record merge).
  Plan plan;

  // kAttemptStart / kAttemptResult / kDispatch.
  int attempt = 0;
  AttemptRecord attempt_result;  // kAttemptResult

  // kMark / kQuarantine / kDispatch: progress site ("keygen",
  // "local-sort", ...; for kQuarantine the inferred crash site, e.g.
  // "execute:keygen"; for kDispatch the worker label, e.g. "worker-2").
  std::string site;

  // kTerminal: the deterministic slice of the JobResult (host latency is
  // deliberately not durable). `result.plan` is the authoritative copy.
  JobResult result;

  // kQuarantine.
  int crash_count = 0;
};

/// Payload text for one record (no framing; `lsn` must already be set).
std::string encode_record(const JournalRecord& r);
/// Inverse of encode_record; throws StatusError(kCorruptJournal) when the
/// payload does not parse.
JournalRecord decode_record(const std::string& payload);

struct JournalConfig {
  std::string dir;
  /// fsync the segment after every append. Turning this off keeps the
  /// write ordering (enough for the in-process tests) but drops the
  /// crash-durability guarantee; the crash harness always leaves it on.
  bool fsync_data = true;
  /// Rotate to a fresh segment once the current one exceeds this size.
  std::uint64_t segment_max_bytes = std::uint64_t{1} << 20;
  /// Test/harness hook, invoked around every durability I/O step with a
  /// site name ("journal.<type>.before-fsync", "journal.<type>.after-
  /// fsync", "snapshot.before-rename", ...) and the seq involved. The
  /// crash harness _exit()s inside it to die at a precise point.
  std::function<void(const char* site, std::uint64_t seq)> crash_hook;
};

class JournalWriter {
 public:
  /// Opens a fresh segment journal-<next_lsn>.wal in cfg.dir (the
  /// directory is created if missing). Throws StatusError(kIoError) on
  /// I/O failure.
  JournalWriter(JournalConfig cfg, std::uint64_t next_lsn);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Assign the next LSN to `r`, frame it, append it to the current
  /// segment and (by default) fsync. Thread-safe; returns the LSN.
  ///
  /// Disk faults do not throw (DESIGN.md §12): a failed write or fsync
  /// closes the segment (a torn record may sit at its tail, and nothing
  /// must ever be appended after a torn record — the reader stops there),
  /// drops the record, and puts the writer in *degraded* mode. Every
  /// subsequent append first tries to heal onto a fresh segment named by
  /// its own LSN; until one succeeds, records keep being dropped and
  /// counted. LSNs are consumed even for dropped records — recovery
  /// computes next_lsn as max-seen + 1, so LSN gaps are harmless.
  std::uint64_t append(JournalRecord r);

  /// Close the current segment and open a fresh one starting at the
  /// current next-LSN. Called after each snapshot so older segments
  /// contain only records the snapshot already covers.
  void rotate();

  std::uint64_t next_lsn() const;

  /// Degraded-durability introspection (all monotone except degraded()).
  bool degraded() const;
  std::uint64_t records_dropped() const;
  std::uint64_t heals() const;

 private:
  bool try_open_segment_locked(std::uint64_t first_lsn);
  void fire_hook(const char* site, std::uint64_t seq);

  JournalConfig cfg_;
  mutable std::mutex mu_;
  std::uint64_t next_lsn_;
  std::uint64_t segment_bytes_ = 0;
  int fd_ = -1;
  bool degraded_ = false;
  std::uint64_t dropped_ = 0;
  std::uint64_t heals_ = 0;
};

/// Journal segments in `dir`, sorted by first LSN (empty if none).
std::vector<std::string> list_segments(const std::string& dir);

/// Delete every segment whose first LSN is below `min_start_lsn` (all
/// records in such segments predate the snapshot taken at that LSN,
/// because the writer rotates immediately after snapshotting).
void prune_segments(const std::string& dir, std::uint64_t min_start_lsn);

struct SegmentScan {
  std::vector<JournalRecord> records;  // valid prefix, in LSN order
  bool torn_tail = false;  // segment ended mid-record (benign crash scar)
  std::uint64_t corrupt = 0;  // 1 when reading stopped at a damaged record
};

/// Read one segment's valid prefix. Never throws on damage — torn tails
/// and corrupt records are reported in the scan result instead.
SegmentScan read_segment(const std::string& path);

}  // namespace dsm::svc
