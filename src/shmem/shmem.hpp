// SHMEM runtime: symmetric heap + one-sided put/get + collectives.
//
// SHMEM's defining properties (per the paper):
//   * a symmetric, segmented address space — every PE allocates the same
//     objects at the same offsets, so a process names remote data with
//     (local offset, PE id);
//   * one-sided communication — only the initiating side computes message
//     parameters (the paper's radix uses receiver-initiated `get`, which
//     also deposits the data in the getter's cache);
//   * cheaper collectives and no per-pair slot back-pressure, which is why
//     SHMEM beats MPI on the permutation-heavy radix sort.
//
// Gets/puts move real bytes; timing runs through the one-sided DES epochs
// (per-source memory serialisation for gets, quiescence for puts).
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "sim/team.hpp"

namespace dsm::shmem {

/// Symmetric heap: one segment per PE, identical layout. Allocation is a
/// host-side (pre-run) operation, mirroring shmalloc's requirement that
/// every PE allocates collectively and receives the same offset.
class SymmetricHeap {
 public:
  SymmetricHeap(int npes, std::uint64_t bytes_per_pe);

  int npes() const { return npes_; }
  std::uint64_t segment_bytes() const { return segment_bytes_; }

  /// Allocate `bytes` (aligned) in every PE's segment; returns the common
  /// offset. Throws when the segment is exhausted.
  std::uint64_t alloc_bytes(std::uint64_t bytes, std::uint64_t align = 64);

  template <typename T>
  std::uint64_t alloc(std::uint64_t count) {
    return alloc_bytes(count * sizeof(T), alignof(T) < 8 ? 8 : alignof(T));
  }

  std::byte* addr(int pe, std::uint64_t offset);
  const std::byte* addr(int pe, std::uint64_t offset) const;

  template <typename T>
  T* at(int pe, std::uint64_t offset) {
    return reinterpret_cast<T*>(addr(pe, offset));
  }

 private:
  int npes_;
  std::uint64_t segment_bytes_;
  std::uint64_t brk_ = 0;
  std::vector<std::vector<std::byte>> segments_;
};

/// One blocking get: `bytes` from (src_pe, src_offset) into local `dst`.
struct GetOp {
  std::byte* dst = nullptr;
  int src_pe = 0;
  std::uint64_t src_offset = 0;
  std::uint64_t bytes = 0;
};

/// One put: `bytes` from local `src` into (dst_pe, dst_offset).
struct PutOp {
  const std::byte* src = nullptr;
  int dst_pe = 0;
  std::uint64_t dst_offset = 0;
  std::uint64_t bytes = 0;
};

class Shmem {
 public:
  Shmem(sim::SimTeam& team, SymmetricHeap& heap);

  int npes() const { return team_.nprocs(); }
  SymmetricHeap& heap() { return heap_; }

  /// Execute a batch of blocking gets issued back-to-back by this PE
  /// (collective: every PE must call, possibly with an empty batch).
  /// Sources must be quiescent — callers barrier before the phase.
  void get_phase(sim::ProcContext& ctx, std::span<const GetOp> gets);

  /// Execute a batch of puts (collective). Delivery is guaranteed only
  /// after the next barrier_all (quiescence), as in real SHMEM.
  void put_phase(sim::ProcContext& ctx, std::span<const PutOp> puts);

  void barrier_all(sim::ProcContext& ctx);

  /// Collective allgather (shmem_fcollect): `in` from every PE
  /// concatenated by PE id into `out` on every PE.
  template <typename T>
  void fcollect(sim::ProcContext& ctx, std::span<const T> in,
                std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    DSM_REQUIRE(out.size() == in.size() * static_cast<std::size_t>(npes()),
                "fcollect output must hold npes blocks");
    struct Block {
      const T* data;
      std::size_t count;
    };
    const Block mine{in.data(), in.size()};
    auto all = team_.reconcile<Block, std::shared_ptr<const std::vector<T>>>(
        ctx, mine, [](std::span<const Block* const> blocks) {
          auto gathered = std::make_shared<std::vector<T>>();
          for (const Block* b : blocks) {
            DSM_REQUIRE(b->count == blocks[0]->count,
                        "fcollect blocks must have equal size");
            gathered->insert(gathered->end(), b->data, b->data + b->count);
          }
          return std::vector<std::shared_ptr<const std::vector<T>>>(
              blocks.size(), gathered);
        });
    std::memcpy(out.data(), all->data(), all->size() * sizeof(T));
    charge_fcollect(ctx, in.size() * sizeof(T));
    team_.vbarrier(ctx);
  }

  /// Collective broadcast (shmem_broadcast): every PE's `data` receives
  /// the root's contents.
  template <typename T>
  void broadcast(sim::ProcContext& ctx, int root, std::span<T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    DSM_REQUIRE(root >= 0 && root < npes(), "broadcast root out of range");
    struct Block {
      const T* data;
      std::size_t count;
    };
    const Block mine{data.data(), data.size()};
    auto payload =
        team_.reconcile<Block, std::shared_ptr<const std::vector<T>>>(
            ctx, mine, [root](std::span<const Block* const> blocks) {
              for (const Block* b : blocks) {
                DSM_REQUIRE(b->count == blocks[0]->count,
                            "broadcast blocks must have equal size");
              }
              const Block* r = blocks[static_cast<std::size_t>(root)];
              auto v = std::make_shared<std::vector<T>>(r->data,
                                                        r->data + r->count);
              return std::vector<std::shared_ptr<const std::vector<T>>>(
                  blocks.size(), v);
            });
    std::memcpy(data.data(), payload->data(), payload->size() * sizeof(T));
    charge_tree(ctx, data.size() * sizeof(T));
    team_.vbarrier(ctx);
  }

  /// Collective concatenation with per-PE block sizes (shmem_collect):
  /// `out` must hold the sum of all PEs' `in` sizes; blocks are placed in
  /// PE order. Returns this PE's block offset within `out` (elements).
  template <typename T>
  std::uint64_t collect(sim::ProcContext& ctx, std::span<const T> in,
                        std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    struct Block {
      const T* data;
      std::size_t count;
    };
    struct CollectOut {
      std::shared_ptr<const std::vector<T>> data;
      std::uint64_t offset;  // this PE's block offset within the result
    };
    const Block mine{in.data(), in.size()};
    const CollectOut res = team_.reconcile<Block, CollectOut>(
        ctx, mine, [](std::span<const Block* const> blocks) {
          auto gathered = std::make_shared<std::vector<T>>();
          std::vector<CollectOut> outs;
          outs.reserve(blocks.size());
          for (const Block* b : blocks) {
            outs.push_back(CollectOut{
                nullptr, static_cast<std::uint64_t>(gathered->size())});
            gathered->insert(gathered->end(), b->data, b->data + b->count);
          }
          for (auto& o : outs) o.data = gathered;
          return outs;
        });
    DSM_REQUIRE(out.size() == res.data->size(),
                "collect output must hold every PE's block");
    std::memcpy(out.data(), res.data->data(), res.data->size() * sizeof(T));
    // Charged like fcollect with the mean block size, plus a small
    // size-exchange round (variable-size collect must agree on offsets).
    charge_fcollect(ctx, res.data->size() * sizeof(T) /
                             static_cast<std::uint64_t>(npes()));
    ctx.rmem_ns(ctx.params().sw.shmem_put_overhead_ns);
    team_.vbarrier(ctx);
    return res.offset;
  }

  /// Collective scalar max over all PEs (shmem_*_max_to_all).
  template <typename T>
  T max_to_all(sim::ProcContext& ctx, T value) {
    static_assert(std::is_arithmetic_v<T>);
    const T result = team_.reconcile<T, T>(
        ctx, value, [](std::span<const T* const> vals) {
          T mx = *vals[0];
          for (const T* v : vals) mx = std::max(mx, *v);
          return std::vector<T>(vals.size(), mx);
        });
    charge_tree(ctx, sizeof(T));
    team_.vbarrier(ctx);
    return result;
  }

  /// Collective element-wise sum over all PEs (shmem_*_sum_to_all):
  /// every PE's `data` becomes the element-wise global sum.
  template <typename T>
  void sum_to_all(sim::ProcContext& ctx, std::span<T> data) {
    static_assert(std::is_arithmetic_v<T>);
    struct Block {
      const T* data;
      std::size_t count;
    };
    const Block mine{data.data(), data.size()};
    auto sum = team_.reconcile<Block, std::shared_ptr<const std::vector<T>>>(
        ctx, mine, [](std::span<const Block* const> blocks) {
          auto total =
              std::make_shared<std::vector<T>>(blocks[0]->count, T{});
          for (const Block* b : blocks) {
            DSM_REQUIRE(b->count == blocks[0]->count,
                        "sum_to_all blocks must have equal size");
            for (std::size_t i = 0; i < b->count; ++i) {
              (*total)[i] += b->data[i];
            }
          }
          return std::vector<std::shared_ptr<const std::vector<T>>>(
              blocks.size(), total);
        });
    std::memcpy(data.data(), sum->data(), sum->size() * sizeof(T));
    charge_tree(ctx, data.size() * sizeof(T));
    ctx.busy_cycles(static_cast<double>(data.size()) *
                    ctx.params().cpu.scan_cycles);
    team_.vbarrier(ctx);
  }

 private:
  void charge_fcollect(sim::ProcContext& ctx, std::uint64_t block_bytes);
  void charge_tree(sim::ProcContext& ctx, std::uint64_t bytes);

  sim::SimTeam& team_;
  SymmetricHeap& heap_;
};

}  // namespace dsm::shmem
