#include "shmem/shmem.hpp"

#include <algorithm>

#include "common/bits.hpp"

namespace dsm::shmem {

SymmetricHeap::SymmetricHeap(int npes, std::uint64_t bytes_per_pe)
    : npes_(npes), segment_bytes_(bytes_per_pe) {
  DSM_REQUIRE(npes >= 1, "heap needs at least one PE");
  DSM_REQUIRE(bytes_per_pe > 0, "heap needs a nonzero segment");
  segments_.resize(static_cast<std::size_t>(npes));
  for (auto& s : segments_) s.resize(bytes_per_pe);
}

std::uint64_t SymmetricHeap::alloc_bytes(std::uint64_t bytes,
                                         std::uint64_t align) {
  DSM_REQUIRE(is_pow2(align), "alignment must be a power of two");
  const std::uint64_t off = (brk_ + align - 1) & ~(align - 1);
  DSM_REQUIRE(off + bytes <= segment_bytes_,
              "symmetric heap exhausted (grow bytes_per_pe)");
  brk_ = off + bytes;
  return off;
}

std::byte* SymmetricHeap::addr(int pe, std::uint64_t offset) {
  DSM_REQUIRE(pe >= 0 && pe < npes_, "PE id out of range");
  DSM_REQUIRE(offset < segment_bytes_, "offset outside the symmetric segment");
  return segments_[static_cast<std::size_t>(pe)].data() + offset;
}

const std::byte* SymmetricHeap::addr(int pe, std::uint64_t offset) const {
  DSM_REQUIRE(pe >= 0 && pe < npes_, "PE id out of range");
  DSM_REQUIRE(offset < segment_bytes_, "offset outside the symmetric segment");
  return segments_[static_cast<std::size_t>(pe)].data() + offset;
}

Shmem::Shmem(sim::SimTeam& team, SymmetricHeap& heap)
    : team_(team), heap_(heap) {
  DSM_REQUIRE(heap.npes() == team.nprocs(),
              "heap PE count must match the team");
}

void Shmem::get_phase(sim::ProcContext& ctx, std::span<const GetOp> gets) {
  const int r = ctx.rank();
  std::vector<sim::Transfer> transfers;
  transfers.reserve(gets.size());
  for (const GetOp& g : gets) {
    DSM_REQUIRE(g.bytes > 0, "empty gets must not be posted");
    DSM_REQUIRE(g.src_offset + g.bytes <= heap_.segment_bytes(),
                "get reads past the symmetric segment");
    std::memcpy(g.dst, heap_.addr(g.src_pe, g.src_offset), g.bytes);
    if (g.src_pe == r) {
      ctx.stream(2 * g.bytes, 2 * g.bytes);  // local copy
      continue;
    }
    transfers.push_back(sim::Transfer{g.src_pe, r, g.bytes});
  }
  team_.get_epoch(ctx, std::move(transfers),
                  sim::OneSidedConfig{
                      ctx.params().sw.shmem_get_overhead_ns});
}

void Shmem::put_phase(sim::ProcContext& ctx, std::span<const PutOp> puts) {
  const int r = ctx.rank();
  std::vector<sim::Transfer> transfers;
  transfers.reserve(puts.size());
  for (const PutOp& pt : puts) {
    DSM_REQUIRE(pt.bytes > 0, "empty puts must not be posted");
    DSM_REQUIRE(pt.dst_offset + pt.bytes <= heap_.segment_bytes(),
                "put writes past the symmetric segment");
    std::memcpy(heap_.addr(pt.dst_pe, pt.dst_offset), pt.src, pt.bytes);
    if (pt.dst_pe == r) {
      ctx.stream(2 * pt.bytes, 2 * pt.bytes);
      continue;
    }
    transfers.push_back(sim::Transfer{r, pt.dst_pe, pt.bytes});
  }
  team_.put_epoch(ctx, std::move(transfers),
                  sim::OneSidedConfig{
                      ctx.params().sw.shmem_put_overhead_ns});
}

void Shmem::barrier_all(sim::ProcContext& ctx) {
  const int rounds =
      bit_width_u64(static_cast<std::uint64_t>(npes()) - 1);
  ctx.rmem_ns(static_cast<double>(rounds) *
              ctx.params().sw.shmem_put_overhead_ns);
  team_.vbarrier(ctx);
}

void Shmem::charge_tree(sim::ProcContext& ctx, std::uint64_t bytes) {
  const int rounds = bit_width_u64(static_cast<std::uint64_t>(npes()) - 1);
  const int partner = (ctx.rank() + 1) % npes();
  ctx.rmem_ns(static_cast<double>(rounds) *
              (ctx.params().sw.shmem_put_overhead_ns +
               ctx.cost().wire_ns(ctx.rank(), partner, bytes)));
}

void Shmem::charge_fcollect(sim::ProcContext& ctx, std::uint64_t block_bytes) {
  const int p = npes();
  const int r = ctx.rank();
  const int rounds = bit_width_u64(static_cast<std::uint64_t>(p) - 1);
  double ns = 0;
  std::uint64_t have = block_bytes;
  for (int k = 0; k < rounds; ++k) {
    const int partner = (r + (1 << k)) % p;
    ns += ctx.params().sw.shmem_put_overhead_ns +
          ctx.cost().wire_ns(r, partner, have);
    have = std::min<std::uint64_t>(2 * have,
                                   block_bytes * static_cast<std::uint64_t>(p));
  }
  ctx.rmem_ns(ns);
}

}  // namespace dsm::shmem
