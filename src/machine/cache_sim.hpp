// Exact set-associative LRU cache simulator.
//
// Not used on the sort fast path (256M-key runs would take hours); it
// exists so unit tests can validate the *analytic* locality model in
// cost.hpp against ground truth on small traces, and for the
// micro_cache_model benchmark.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/params.hpp"

namespace dsm::machine {

class CacheSim {
 public:
  explicit CacheSim(const CacheParams& params);

  /// Touch the line containing byte address `addr`; returns true on miss.
  bool access(std::uint64_t addr);

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const;

  void reset();

  int sets() const { return sets_; }

 private:
  struct Way {
    std::uint64_t tag = ~std::uint64_t{0};
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  CacheParams params_;
  int sets_;
  int line_shift_;
  std::vector<Way> ways_;  // sets_ x params_.ways, row-major
  std::uint64_t tick_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dsm::machine
