// Exact TLB simulator (fully associative, LRU), mirroring the R10000's
// 64-entry TLB where each entry maps an aligned pair of pages.
//
// Like CacheSim, this is a test/validation tool for the analytic TLB model
// in cost.hpp, not a fast-path component.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "machine/params.hpp"

namespace dsm::machine {

class TlbSim {
 public:
  TlbSim(const TlbParams& params, std::uint64_t page_bytes);

  /// Touch byte address `addr`; returns true on TLB miss.
  bool access(std::uint64_t addr);

  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t misses() const { return misses_; }
  double miss_rate() const;

  void reset();

 private:
  TlbParams params_;
  int entry_shift_;  // log2(page_bytes * pages_per_entry)
  // LRU list of entry ids, most recent at front, with an index into it.
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> index_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dsm::machine
