// Parameters of the simulated machine: an SGI Origin 2000 as described in
// §2 of the paper (and in Cortesi, "Origin 2000 performance tuning").
//
// The reproduction runs algorithms for real but charges *virtual time*
// from these parameters. Published numbers used directly:
//   - 195 MHz R10000, 32 KB L1 (not modelled separately; folded into the
//     per-op cycle counts), 4 MB 2-way L2, 128 B lines
//   - 64 processors = 32 nodes x 2 procs, 2 nodes per router,
//     16 routers in a hypercube
//   - uncontended read latency: local 313 ns, farthest 1010 ns, +100 ns
//     per router hop (those three pin local=313, remote_base=610,
//     per_hop=100: 610 + 4 hops * 100 = 1010; the implied machine-average
//     is ~800 ns vs the published 796 ns)
//   - peak 1.6 GB/s total per link (both directions) => 0.8 GB/s each way
//   - default page 16 KB (the paper's experiments used 64 KB, and 256 KB
//     for the 256M-key runs); R10000 TLB: 64 entries x 2 pages each
//
// Software (per-model) costs are calibration constants with the paper's
// qualitative ordering built in: MPI two-sided overhead > SHMEM one-sided
// overhead; the staged ("SGI MPT") transport adds a bounce-buffer copy.
#pragma once

#include <cstdint>

namespace dsm::machine {

struct CpuParams {
  double ns_per_cycle = 1000.0 / 195.0;  // 195 MHz R10000

  // Per-element cycle counts for the sorting kernels (loads/stores that hit
  // in cache, address arithmetic, loop overhead). Calibrated so the
  // sequential radix sort reproduces Table 1's ~1.6 s / 1M keys at radix 8.
  double hist_update_cycles = 15;    // digit extract + histogram increment
  double permute_cycles = 32;        // rank lookup/increment + indexed store
  double buffer_copy_cycles = 20;    // stage + re-read a key through a local buffer
  double compare_cycles = 8;         // one comparison in small sorts
  double binary_search_cycles = 12;  // per level of splitter binary search
  double scan_cycles = 4;            // per element of prefix-scan loops
};

struct CacheParams {
  std::uint64_t bytes = 4ull << 20;  // unified L2
  int ways = 2;
  int line_bytes = 128;
};

struct TlbParams {
  int entries = 64;         // R10000 TLB entries
  int pages_per_entry = 2;  // each entry maps an adjacent pair of pages
  double miss_ns = 140;     // software-assisted refill (fast handler)
};

struct MemParams {
  double local_ns = 313;        // load latency to local memory
  double remote_base_ns = 610;  // to a remote node through 0 router hops
  double per_hop_ns = 100;      // per router hop
  double l2_hit_line_ns = 12;   // touching a resident line (amortised)

  // Streaming (pipelined, non-blocking-cache) per-line costs; lower than
  // the raw latency because the R10000 overlaps outstanding misses.
  double stream_local_line_ns = 165;
  double stream_remote_extra_ns = 0.45;  // x per-hop-latency fraction added

  double link_bw_bytes_per_ns = 0.8;  // 0.8 GB/s per direction per link

  // Achieved bulk remote-transfer bandwidth (BTE/get/put payloads, direct
  // message deposits): far below link peak because of protocol packets,
  // directory lookups and memory occupancy at both ends (the paper's
  // Table 2 implies ~0.1-0.15 B/ns effective per processor during the
  // radix permutation at 64M keys).
  double bulk_copy_bytes_per_ns = 0.13;

  // Directory/coherence protocol: per-transaction controller occupancy and
  // the extra protocol messages a scattered remote write incurs
  // (read-exclusive + invalidation + ack + eventual writeback).
  double dir_occupancy_ns = 170;
  double scattered_write_protocol_ns = 400;  // inval/intervention stalls
  double writeback_line_ns = 80;             // contends at the home node

  // Writer-side issue cost of one fine-grained scattered remote write
  // (store completes through the write buffer; the dependent-chain stall
  // the R10000 cannot hide).
  double scattered_write_issue_ns = 300;

  // Dependent-chain stall per bucket-run switch for scattered accesses
  // whose working set exceeds the L2 (the memory-bound regime of radix
  // permutations; for random keys runs ~= accesses, so this is ~per key —
  // calibrated against Table 1's 1M-key sequential time. Pre-clustered
  // streams have few switches and stream instead).
  double scattered_access_extra_ns = 120;

  // Store-based block copy into remotely-homed memory (the CC-SAS-NEW
  // buffered permutation): processor stores cannot pipeline like the
  // BTE/get path (few outstanding read-exclusive misses, plus invalidation
  // acks), so the per-line cost is several times the bulk-copy bound —
  // the reason CC-SAS-NEW still trails SHMEM and MPI at large sizes even
  // though it fixes the original's protocol interference.
  double ccsas_block_line_ns = 6000;
};

/// Per-programming-model software costs.
struct SoftwareParams {
  // Two-sided MPI (the authors' modified MPICH, "NEW"): direct copy into
  // the destination address space, lock-free 1-deep per-pair slots.
  double mpi_send_overhead_ns = 6000;
  double mpi_recv_overhead_ns = 5000;
  int mpi_slot_depth = 1;  // per ordered pair; the paper discusses deepening

  // Vendor-style staged MPI ("SGI MPT"): adds a staging copy through a
  // library bounce buffer plus substantially higher fixed overhead
  // (MPT-era point-to-point latency was ~10 us).
  double mpi_staged_send_overhead_ns = 12000;
  double mpi_staged_recv_overhead_ns = 11000;
  // Staged copies run at memory-copy bandwidth (two extra traversals).
  double copy_bytes_per_ns = 0.31;

  // One-sided SHMEM: thin layer over the hardware put/get path (per-call
  // cost of shmem_get/put of one chunk, including the library's sync).
  double shmem_get_overhead_ns = 5000;
  double shmem_put_overhead_ns = 3500;

  // Collectives: per-participant base cost (software tree traversal).
  double collective_per_proc_ns = 1800;

  // CC-SAS synchronisation primitives.
  double barrier_hop_ns = 1100;   // per level of the barrier tree
  double lock_acquire_ns = 600;  // uncontended
};

struct MachineParams {
  int max_procs = 64;
  int procs_per_node = 2;
  int nodes_per_router = 2;
  std::uint64_t page_bytes = 64ull << 10;  // paper's best setting for <=64M

  CpuParams cpu;
  CacheParams l2;
  TlbParams tlb;
  MemParams mem;
  SoftwareParams sw;

  /// TLB reach in bytes for the current page size.
  std::uint64_t tlb_reach_bytes() const {
    return static_cast<std::uint64_t>(tlb.entries) *
           static_cast<std::uint64_t>(tlb.pages_per_entry) * page_bytes;
  }

  /// The configuration used throughout the paper's evaluation.
  static MachineParams origin2000();

  /// origin2000() with the page size the paper used for a given total key
  /// count (64 KB up to 64M keys, 256 KB above).
  static MachineParams origin2000_for_keys(std::uint64_t total_keys);

  /// Validate internal consistency (powers of two where required, positive
  /// latencies); throws dsm::Error on violation.
  void validate() const;
};

}  // namespace dsm::machine
