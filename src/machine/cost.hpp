// Analytic cost model: converts *measured event counts* from the real
// execution of the sorting algorithms into virtual nanoseconds on the
// simulated Origin 2000.
//
// Design rule: the model never guesses workload properties — callers pass
// counts they measured while doing the real work (elements accessed,
// maximal sequential runs, active destination regions, bytes sent, hop
// distances). The model only supplies machine behaviour: cache/TLB
// locality, latencies, bandwidths, protocol overheads.
//
// The analytic cache/TLB forms are validated against the exact simulators
// (CacheSim/TlbSim) in tests/machine/cost_model_test.cpp.
#pragma once

#include <cstdint>

#include "machine/params.hpp"
#include "machine/topology.hpp"

namespace dsm::machine {

/// Summary of one process's local access pattern in one phase.
///
/// `runs` counts maximal sequences of consecutive accesses that land in the
/// same destination region (for a radix permutation: consecutive keys with
/// the same digit). `active_regions` is how many regions are interleaved
/// (nonzero histogram buckets). Together they capture exactly the locality
/// difference between the paper's gauss/random and remote/local/half key
/// distributions.
struct AccessPattern {
  std::uint64_t accesses = 0;
  std::uint64_t elem_bytes = 4;
  std::uint64_t runs = 0;
  std::uint64_t active_regions = 1;
  std::uint64_t footprint_bytes = 0;
};

class CostModel {
 public:
  CostModel(const MachineParams& params, int nprocs);

  const MachineParams& params() const { return params_; }
  const Topology& topology() const { return topo_; }
  int nprocs() const { return topo_.nprocs(); }

  // ---- BUSY ----------------------------------------------------------
  double busy_ns(double cycles) const { return cycles * params_.cpu.ns_per_cycle; }

  // ---- LMEM: local memory stalls --------------------------------------
  /// Sequential sweep over `bytes` within a region of `footprint` bytes.
  double stream_ns(std::uint64_t bytes, std::uint64_t footprint) const;

  /// Scattered access (radix permutation / histogram spray) — see
  /// AccessPattern. Returns stall ns (LMEM).
  double scattered_ns(const AccessPattern& p) const;

  /// Probability that a region switch misses the TLB (exposed for tests).
  double tlb_switch_miss_prob(std::uint64_t active_regions,
                              std::uint64_t footprint) const;

  /// Probability that a region switch finds its open line evicted
  /// (exposed for tests).
  double line_switch_miss_prob(std::uint64_t active_regions,
                               std::uint64_t footprint) const;

  // ---- RMEM: remote transfer primitives --------------------------------
  /// Latency + size/bandwidth for one contiguous transfer src -> dst.
  double wire_ns(int src, int dst, std::uint64_t bytes) const;

  /// One coherence line round trip (read or read-exclusive) src -> dst.
  double line_rtt_ns(int src, int dst) const;

  /// Regime of a CC-SAS scattered remote-write phase, as a function of the
  /// writer's outgoing remote volume for the phase. Small volumes ride the
  /// write buffer (stores retire, lines stay dirty in the writer's cache:
  /// one RdEx directory visit per line). Once the volume overflows the
  /// cache, evictions flood the homes with writebacks on top of the RdEx
  /// and invalidation traffic — the paper's stated mechanism for the
  /// CC-SAS radix collapse at large data sets.
  struct ScatteredWriteProfile {
    double per_line_ns = 0;          // writer-side issue cost
    double transactions_per_line = 0;  // home directory visits
  };
  ScatteredWriteProfile scattered_write_profile(
      std::uint64_t outgoing_remote_bytes) const;

  /// Block transfer of `bytes` (buffered chunk copy, put/get payload):
  /// latency once, then pipelined at link bandwidth.
  double block_transfer_ns(int src, int dst, std::uint64_t bytes) const;

  /// Directory/controller occupancy consumed at the home node by
  /// `transactions` protocol transactions — the input to the contention
  /// relaxation in the epoch reconciler.
  double home_occupancy_ns(std::uint64_t transactions) const;

 private:
  MachineParams params_;
  Topology topo_;
};

}  // namespace dsm::machine
