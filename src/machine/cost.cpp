#include "machine/cost.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/error.hpp"

namespace dsm::machine {

CostModel::CostModel(const MachineParams& params, int nprocs)
    : params_(params), topo_(params, nprocs) {}

double CostModel::stream_ns(std::uint64_t bytes, std::uint64_t footprint) const {
  if (bytes == 0) return 0.0;
  const auto line = static_cast<std::uint64_t>(params_.l2.line_bytes);
  const double lines = static_cast<double>(ceil_div(bytes, line));
  // Streaming through a region larger than the cache misses on every line
  // (LRU); a resident region costs only the hit pipeline.
  double ns = footprint <= params_.l2.bytes
                  ? lines * params_.mem.l2_hit_line_ns
                  : lines * params_.mem.stream_local_line_ns;
  // Sequential page walks: one TLB fill per page when the region exceeds
  // TLB reach (entries persist otherwise).
  if (footprint > params_.tlb_reach_bytes()) {
    const double pages = static_cast<double>(ceil_div(bytes, params_.page_bytes));
    ns += pages * params_.tlb.miss_ns;
  }
  return ns;
}

double CostModel::tlb_switch_miss_prob(std::uint64_t active_regions,
                                       std::uint64_t footprint) const {
  if (footprint == 0 || active_regions == 0) return 0.0;
  // Region heads occupy distinct pages only when a region spans at least a
  // page; contiguous regions tiling `footprint` can never occupy more head
  // pages than the region count or the page count.
  const std::uint64_t head_pages =
      std::min<std::uint64_t>(active_regions, ceil_div(footprint, params_.page_bytes));
  const std::uint64_t reach_pages =
      static_cast<std::uint64_t>(params_.tlb.entries) *
      static_cast<std::uint64_t>(params_.tlb.pages_per_entry);
  if (head_pages <= reach_pages) return 0.0;
  // Random-order revisits over `head_pages` live pages with an LRU TLB of
  // `reach_pages` entries hit with probability ~ reach/head_pages.
  return 1.0 - static_cast<double>(reach_pages) / static_cast<double>(head_pages);
}

double CostModel::line_switch_miss_prob(std::uint64_t active_regions,
                                        std::uint64_t footprint) const {
  if (footprint <= params_.l2.bytes) return 0.0;
  // Each interleaved region keeps one open (partially written) line; when
  // the open-line frontier significantly pressures the cache the open line
  // is gone by the next visit. Half the cache is treated as available to
  // the frontier (the other half streams input/auxiliary data).
  const double frontier = static_cast<double>(active_regions) *
                          static_cast<double>(params_.l2.line_bytes);
  const double budget = static_cast<double>(params_.l2.bytes) / 2.0;
  if (frontier <= budget) return 0.0;
  return 1.0 - budget / frontier;
}

double CostModel::scattered_ns(const AccessPattern& p) const {
  if (p.accesses == 0) return 0.0;
  DSM_REQUIRE(p.runs >= 1 && p.runs <= p.accesses,
              "runs must be in [1, accesses]");
  DSM_REQUIRE(p.footprint_bytes > 0, "scattered access needs a footprint");
  const auto line = static_cast<std::uint64_t>(params_.l2.line_bytes);
  const double bytes = static_cast<double>(p.accesses * p.elem_bytes);
  const double lines = bytes / static_cast<double>(line);

  double ns = 0.0;
  if (p.footprint_bytes <= params_.l2.bytes) {
    ns += lines * params_.mem.l2_hit_line_ns;
  } else {
    // Every distinct line is fetched (write-allocate) and written back
    // once; each *run switch* additionally stalls the dependent chain the
    // machine cannot overlap once the working set leaves the L2. Long runs
    // (pre-clustered `remote`/`local`/`half` data) stream instead — the
    // paper's Figure 5/9 locality effect.
    ns += lines * params_.mem.stream_local_line_ns;
    ns += static_cast<double>(p.runs) * params_.mem.scattered_access_extra_ns;
    // Region switches whose open line was evicted pay a full random-access
    // latency instead of the pipelined stream cost.
    const double lsp = line_switch_miss_prob(p.active_regions, p.footprint_bytes);
    ns += static_cast<double>(p.runs) * lsp * params_.mem.local_ns;
  }
  // TLB: every region switch that lands on an evicted page entry pays a
  // refill. This is the term that separates gauss/random from
  // remote/local/half once footprints exceed TLB reach.
  const double tsp = tlb_switch_miss_prob(p.active_regions, p.footprint_bytes);
  ns += static_cast<double>(p.runs) * tsp * params_.tlb.miss_ns;
  return ns;
}

double CostModel::wire_ns(int src, int dst, std::uint64_t bytes) const {
  // Effective end-to-end transfer: first-word latency plus the payload at
  // the *achieved* bulk bandwidth (protocol + memory occupancy included).
  return topo_.read_latency_ns(src, dst) +
         static_cast<double>(bytes) / params_.mem.bulk_copy_bytes_per_ns;
}

double CostModel::line_rtt_ns(int src, int dst) const {
  return topo_.read_latency_ns(src, dst);
}

double CostModel::block_transfer_ns(int src, int dst,
                                    std::uint64_t bytes) const {
  if (bytes == 0) return 0.0;
  return wire_ns(src, dst, bytes);
}

double CostModel::home_occupancy_ns(std::uint64_t transactions) const {
  return static_cast<double>(transactions) * params_.mem.dir_occupancy_ns;
}

CostModel::ScatteredWriteProfile CostModel::scattered_write_profile(
    std::uint64_t outgoing_remote_bytes) const {
  const double cache = static_cast<double>(params_.l2.bytes);
  const double vol = static_cast<double>(outgoing_remote_bytes);
  const double frac =
      std::clamp((vol - cache / 8.0) / cache, 0.0, 1.0);
  ScatteredWriteProfile prof;
  // Flood regime: each line eventually writes back and its invalidation/
  // intervention traffic stalls the writer's store stream on top of the
  // base issue cost.
  prof.per_line_ns = params_.mem.scattered_write_issue_ns +
                     frac * (params_.mem.writeback_line_ns +
                             params_.mem.scattered_write_protocol_ns);
  prof.transactions_per_line = 1.0 + 3.0 * frac;
  return prof;
}

}  // namespace dsm::machine
