#include "machine/topology.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace dsm::machine {

Topology::Topology(const MachineParams& params, int nprocs)
    : params_(params), nprocs_(nprocs) {
  params_.validate();
  DSM_REQUIRE(nprocs >= 1, "topology needs at least one processor");
  nodes_ = static_cast<int>(
      ceil_div(static_cast<std::uint64_t>(nprocs),
               static_cast<std::uint64_t>(params_.procs_per_node)));
  routers_ = static_cast<int>(
      ceil_div(static_cast<std::uint64_t>(nodes_),
               static_cast<std::uint64_t>(params_.nodes_per_router)));
  dim_ = routers_ > 1
             ? static_cast<int>(
                   log2_exact(ceil_pow2(static_cast<std::uint64_t>(routers_))))
             : 0;
}

int Topology::node_of(int proc) const {
  DSM_REQUIRE(proc >= 0 && proc < nprocs_, "processor id out of range");
  return proc / params_.procs_per_node;
}

int Topology::router_of_node(int node) const {
  DSM_REQUIRE(node >= 0 && node < nodes_, "node id out of range");
  return node / params_.nodes_per_router;
}

int Topology::hops(int a, int b) const {
  const int ra = router_of(a);
  const int rb = router_of(b);
  return std::popcount(static_cast<unsigned>(ra) ^ static_cast<unsigned>(rb));
}

double Topology::read_latency_ns(int from, int at) const {
  if (same_node(from, at)) return params_.mem.local_ns;
  return params_.mem.remote_base_ns +
         params_.mem.per_hop_ns * static_cast<double>(hops(from, at));
}

double Topology::average_latency_ns() const {
  // Average over distinct *memories* (nodes) as seen from processor 0,
  // which is how the Origin documentation reports it.
  double sum = 0;
  for (int node = 0; node < nodes_; ++node) {
    const int proc = node * params_.procs_per_node;
    sum += read_latency_ns(0, proc);
  }
  return sum / static_cast<double>(nodes_);
}

}  // namespace dsm::machine
