#include "machine/params.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace dsm::machine {

MachineParams MachineParams::origin2000() { return MachineParams{}; }

MachineParams MachineParams::origin2000_for_keys(std::uint64_t total_keys) {
  MachineParams mp;
  // Section 4: "for 1M - 64M data sets, it is 64KB; for the 256M data set,
  // it is 256KB".
  mp.page_bytes = total_keys > (64ull << 20) ? (256ull << 10) : (64ull << 10);
  return mp;
}

void MachineParams::validate() const {
  DSM_REQUIRE(max_procs >= 1, "max_procs >= 1");
  DSM_REQUIRE(procs_per_node >= 1, "procs_per_node >= 1");
  DSM_REQUIRE(nodes_per_router >= 1, "nodes_per_router >= 1");
  DSM_REQUIRE(is_pow2(page_bytes), "page size must be a power of two");
  DSM_REQUIRE(is_pow2(l2.bytes), "cache size must be a power of two");
  DSM_REQUIRE(is_pow2(static_cast<std::uint64_t>(l2.line_bytes)),
              "line size must be a power of two");
  DSM_REQUIRE(l2.ways >= 1, "cache needs at least one way");
  DSM_REQUIRE(l2.bytes % (static_cast<std::uint64_t>(l2.line_bytes) *
                          static_cast<std::uint64_t>(l2.ways)) ==
                  0,
              "cache geometry must divide evenly into sets");
  DSM_REQUIRE(tlb.entries >= 1 && tlb.pages_per_entry >= 1, "TLB geometry");
  DSM_REQUIRE(cpu.ns_per_cycle > 0, "cpu speed");
  DSM_REQUIRE(mem.local_ns > 0 && mem.remote_base_ns > 0 && mem.per_hop_ns >= 0,
              "latencies must be positive");
  DSM_REQUIRE(mem.link_bw_bytes_per_ns > 0, "link bandwidth");
  DSM_REQUIRE(mem.bulk_copy_bytes_per_ns > 0, "bulk copy bandwidth");
  DSM_REQUIRE(sw.copy_bytes_per_ns > 0, "copy bandwidth");
  DSM_REQUIRE(sw.mpi_slot_depth >= 1, "slot depth >= 1");
}

}  // namespace dsm::machine
