// Origin-2000 interconnect topology.
//
// Processors pair up into nodes, node pairs attach to a router, and the
// routers form a hypercube (16 routers for the 64-processor machine in the
// paper). Read latency is local_ns within a node, and
// remote_base_ns + hops * per_hop_ns across nodes, where hops is the
// Hamming distance between router ids — this reproduces the published
// 313 / ~796 (average) / 1010 ns (farthest) figures.
#pragma once

#include <bit>
#include <cstdint>

#include "machine/params.hpp"

namespace dsm::machine {

class Topology {
 public:
  Topology(const MachineParams& params, int nprocs);

  int nprocs() const { return nprocs_; }
  int nodes() const { return nodes_; }
  int routers() const { return routers_; }
  int dimension() const { return dim_; }

  int node_of(int proc) const;
  int router_of_node(int node) const;
  int router_of(int proc) const { return router_of_node(node_of(proc)); }

  /// Router hops between two processors (0 when they share a router).
  int hops(int a, int b) const;

  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// Uncontended first-word read latency from `from` to memory homed at
  /// `at`, in ns.
  double read_latency_ns(int from, int at) const;

  /// Average of local and all remote latencies from processor 0 — the
  /// quantity the paper quotes as 796 ns on the 64-processor machine.
  double average_latency_ns() const;

 private:
  const MachineParams params_;
  int nprocs_;
  int nodes_;
  int routers_;
  int dim_;
};

}  // namespace dsm::machine
