#include "machine/cache_sim.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace dsm::machine {

CacheSim::CacheSim(const CacheParams& params) : params_(params) {
  DSM_REQUIRE(is_pow2(params_.bytes), "cache size must be a power of two");
  DSM_REQUIRE(is_pow2(static_cast<std::uint64_t>(params_.line_bytes)),
              "line size must be a power of two");
  DSM_REQUIRE(params_.ways >= 1, "cache needs at least one way");
  const std::uint64_t lines =
      params_.bytes / static_cast<std::uint64_t>(params_.line_bytes);
  DSM_REQUIRE(lines % static_cast<std::uint64_t>(params_.ways) == 0,
              "lines must divide evenly into ways");
  sets_ = static_cast<int>(lines / static_cast<std::uint64_t>(params_.ways));
  DSM_REQUIRE(is_pow2(static_cast<std::uint64_t>(sets_)),
              "set count must be a power of two");
  line_shift_ = log2_exact(static_cast<std::uint64_t>(params_.line_bytes));
  ways_.resize(static_cast<std::size_t>(sets_) *
               static_cast<std::size_t>(params_.ways));
}

bool CacheSim::access(std::uint64_t addr) {
  ++accesses_;
  ++tick_;
  const std::uint64_t line = addr >> line_shift_;
  const std::uint64_t set = line & (static_cast<std::uint64_t>(sets_) - 1);
  const std::uint64_t tag = line >> log2_exact(static_cast<std::uint64_t>(sets_));
  Way* base = &ways_[static_cast<std::size_t>(set) *
                     static_cast<std::size_t>(params_.ways)];

  for (int w = 0; w < params_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = tick_;
      return false;  // hit
    }
  }
  // Miss. Choose victim: first invalid way, else LRU.
  Way* victim = nullptr;
  for (int w = 0; w < params_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
  }
  if (victim == nullptr) {
    victim = base;
    for (int w = 1; w < params_.ways; ++w) {
      if (base[w].last_use < victim->last_use) victim = &base[w];
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = tick_;
  ++misses_;
  return true;
}

double CacheSim::miss_rate() const {
  return accesses_ == 0
             ? 0.0
             : static_cast<double>(misses_) / static_cast<double>(accesses_);
}

void CacheSim::reset() {
  for (auto& w : ways_) w = Way{};
  tick_ = accesses_ = misses_ = 0;
}

}  // namespace dsm::machine
