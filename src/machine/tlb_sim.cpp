#include "machine/tlb_sim.hpp"

#include "common/bits.hpp"
#include "common/error.hpp"

namespace dsm::machine {

TlbSim::TlbSim(const TlbParams& params, std::uint64_t page_bytes)
    : params_(params) {
  DSM_REQUIRE(is_pow2(page_bytes), "page size must be a power of two");
  DSM_REQUIRE(is_pow2(static_cast<std::uint64_t>(params_.pages_per_entry)),
              "pages per entry must be a power of two");
  DSM_REQUIRE(params_.entries >= 1, "TLB needs at least one entry");
  entry_shift_ = log2_exact(
      page_bytes * static_cast<std::uint64_t>(params_.pages_per_entry));
}

bool TlbSim::access(std::uint64_t addr) {
  ++accesses_;
  const std::uint64_t entry = addr >> entry_shift_;
  const auto it = index_.find(entry);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    return false;
  }
  ++misses_;
  if (static_cast<int>(lru_.size()) == params_.entries) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(entry);
  index_[entry] = lru_.begin();
  return true;
}

double TlbSim::miss_rate() const {
  return accesses_ == 0
             ? 0.0
             : static_cast<double>(misses_) / static_cast<double>(accesses_);
}

void TlbSim::reset() {
  lru_.clear();
  index_.clear();
  accesses_ = misses_ = 0;
}

}  // namespace dsm::machine
